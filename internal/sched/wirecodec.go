package sched

import (
	"fmt"

	"sparkgo/internal/wire"
)

// The binary wire framing of the flattened schedule form (see codec.go
// for the flattening): fixed field order, varint lengths, float maps
// flattened to AllOps-ordered fixed-width slices. Identical schedules
// encode to identical bytes.

// resultTag versions the schedule wire layout.
const resultTag = "sched/1"

// encodeResultWire frames the flattened schedule in the deterministic
// binary layout.
func encodeResultWire(rc *resultCode) []byte {
	e := wire.NewEncoder(512 + len(rc.Graph))
	e.Tag(resultTag)
	e.Bytes(rc.Graph)
	e.Int(rc.Mode)
	e.Bool(rc.HasModel)
	if rc.HasModel {
		e.Float64(rc.NandDelay)
		e.Float64(rc.ClockPeriod)
	}
	e.Int(rc.NumStates)
	e.Ints(rc.OpState)
	e.Float64s(rc.Arrival)
	e.Float64s(rc.Finish)
	e.Uvarint(uint64(len(rc.OpOrder)))
	for _, list := range rc.OpOrder {
		e.Ints(list)
	}
	e.Uvarint(uint64(len(rc.Transitions)))
	for _, tr := range rc.Transitions {
		e.Int(tr.From)
		e.Int(tr.Cond)
		e.Bool(tr.CondValue)
		e.Int(tr.To)
	}
	e.Uvarint(uint64(len(rc.VarClass)))
	for _, vc := range rc.VarClass {
		e.Int(vc.Var)
		e.Int(vc.Class)
	}
	e.Float64s(rc.StateCritPath)
	e.Ints(rc.ReentrantStates)
	e.Int(rc.ClockViolations)
	e.Bool(rc.HasDeps)
	if rc.HasDeps {
		e.Ints(rc.DepOps)
		e.Uvarint(uint64(len(rc.DepEdges)))
		for _, ec := range rc.DepEdges {
			e.Int(ec.From)
			e.Int(ec.To)
			e.Int(ec.Kind)
			e.Int(ec.Var)
		}
	}
	return e.Data()
}

// decodeResultWire parses the binary layout back into the flattened
// form, rejecting truncation, trailing bytes, and inflated lengths.
func decodeResultWire(data []byte) (*resultCode, error) {
	d := wire.NewDecoder(data)
	d.Tag(resultTag)
	rc := &resultCode{
		Graph: d.Bytes(),
		Mode:  d.Int(),
	}
	if rc.HasModel = d.Bool(); rc.HasModel {
		rc.NandDelay = d.Float64()
		rc.ClockPeriod = d.Float64()
	}
	rc.NumStates = d.Int()
	rc.OpState = d.Ints()
	rc.Arrival = d.Float64s()
	rc.Finish = d.Float64s()
	if n := d.Len(1); n > 0 {
		rc.OpOrder = make([][]int, 0, n)
		for i := 0; i < n && d.Err() == nil; i++ {
			rc.OpOrder = append(rc.OpOrder, d.Ints())
		}
	}
	if n := d.Len(4); n > 0 { // a transition is >= 4 bytes
		rc.Transitions = make([]schedTransCode, 0, n)
		for i := 0; i < n && d.Err() == nil; i++ {
			rc.Transitions = append(rc.Transitions, schedTransCode{
				From: d.Int(), Cond: d.Int(), CondValue: d.Bool(), To: d.Int()})
		}
	}
	if n := d.Len(2); n > 0 { // a var-class entry is >= 2 bytes
		rc.VarClass = make([]varClassCode, 0, n)
		for i := 0; i < n && d.Err() == nil; i++ {
			rc.VarClass = append(rc.VarClass, varClassCode{Var: d.Int(), Class: d.Int()})
		}
	}
	rc.StateCritPath = d.Float64s()
	rc.ReentrantStates = d.Ints()
	rc.ClockViolations = d.Int()
	if rc.HasDeps = d.Bool(); rc.HasDeps {
		rc.DepOps = d.Ints()
		if n := d.Len(4); n > 0 { // a dependence edge is >= 4 bytes
			rc.DepEdges = make([]depEdgeCode, 0, n)
			for i := 0; i < n && d.Err() == nil; i++ {
				rc.DepEdges = append(rc.DepEdges, depEdgeCode{
					From: d.Int(), To: d.Int(), Kind: d.Int(), Var: d.Int()})
			}
		}
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("result: %w", err)
	}
	return rc, nil
}
