// Package script parses Spark-style synthesis scripts: the designer-facing
// control the paper describes in §4 ("it also allows the designer to
// control the various passes and the degree of parallelization through
// script files. For example, the designer may specify which loops to
// unroll and by how much").
//
// Grammar (one command per line, '#' starts a comment):
//
//	preset microprocessor | classical
//	clock <period-gu>              # target cycle time (0 = unconstrained)
//	normalize-while
//	inline                         # inline every call
//	drop-uncalled
//	speculate
//	unroll all full                # fully unroll every loop
//	unroll <label> full            # fully unroll one loop
//	unroll <label> <factor>        # partial unroll (loop kept)
//	constprop | constfold | copyprop | cse | dce
//	rounds <n>                     # iterate the pass list up to n rounds
//
// A script that lists any pass replaces the preset's default pipeline with
// exactly the listed sequence. Pass commands resolve through the
// internal/pass registry, so every registered pass name (including aliases
// like "const-prop" and the bounded "unroll all full <max>") is accepted.
package script

import (
	"fmt"
	"strconv"
	"strings"

	"sparkgo/internal/pass"
	"sparkgo/internal/transform"
)

// Preset mirrors core.Preset without importing it (core imports script's
// sibling packages; keep the dependency one-way).
type Preset int

const (
	// Microprocessor is the paper's unlimited-resource chaining regime.
	Microprocessor Preset = iota
	// Classical is the resource-constrained sequential baseline.
	Classical
)

// Script is a parsed synthesis script.
type Script struct {
	Preset Preset
	Clock  float64
	Rounds int
	Passes []transform.Pass
	// Lines keeps the accepted source lines for reports.
	Lines []string
}

// Parse parses script text.
func Parse(text string) (*Script, error) {
	s := &Script{Preset: Microprocessor, Rounds: 0}
	for ln, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		cmd, args := fields[0], fields[1:]
		if err := s.apply(cmd, args); err != nil {
			return nil, fmt.Errorf("script line %d: %w", ln+1, err)
		}
		s.Lines = append(s.Lines, line)
	}
	return s, nil
}

func (s *Script) apply(cmd string, args []string) error {
	switch cmd {
	case "preset":
		if len(args) != 1 {
			return fmt.Errorf("preset needs one argument")
		}
		switch args[0] {
		case "microprocessor", "micro", "mp":
			s.Preset = Microprocessor
		case "classical", "asic":
			s.Preset = Classical
		default:
			return fmt.Errorf("unknown preset %q", args[0])
		}
	case "clock":
		if len(args) != 1 {
			return fmt.Errorf("clock needs one argument")
		}
		v, err := strconv.ParseFloat(args[0], 64)
		if err != nil || v < 0 {
			return fmt.Errorf("bad clock period %q", args[0])
		}
		s.Clock = v
	case "rounds":
		if len(args) != 1 {
			return fmt.Errorf("rounds needs one argument")
		}
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 1 {
			return fmt.Errorf("bad round count %q", args[0])
		}
		s.Rounds = n
	default:
		// Every other command is a pass spec resolved by the registry
		// (internal/pass), so scripts accept exactly the pass names the
		// synthesizer and exploration engine use.
		p, err := pass.Build(strings.Join(append([]string{cmd}, args...), " "))
		if err != nil {
			return err
		}
		s.Passes = append(s.Passes, p)
	}
	return nil
}
