package script_test

import (
	"testing"

	"sparkgo/internal/core"
	"sparkgo/internal/ild"
	"sparkgo/internal/script"
)

func TestParseFullScript(t *testing.T) {
	s, err := script.Parse(`
# the paper's coordinated sequence
preset microprocessor
clock 0
inline
drop-uncalled
speculate
unroll all full
constprop
constfold
copyprop
cse
dce
rounds 4
`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Preset != script.Microprocessor {
		t.Error("preset wrong")
	}
	if len(s.Passes) != 9 {
		t.Errorf("passes = %d, want 9", len(s.Passes))
	}
	if s.Rounds != 4 {
		t.Errorf("rounds = %d", s.Rounds)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"preset bogus",
		"clock x",
		"unroll",
		"unroll all 0",
		"unroll all -3",
		"frobnicate",
		"rounds 0",
	}
	for _, src := range bad {
		if _, err := script.Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestScriptDrivesSynthesis(t *testing.T) {
	s, err := script.Parse(`
preset microprocessor
inline
drop-uncalled
speculate
unroll all full
constprop
constfold
copyprop
cse
dce
rounds 6
`)
	if err != nil {
		t.Fatal(err)
	}
	p := ild.Program(4)
	res, err := core.Synthesize(p, core.FromScript(s))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 1 {
		t.Errorf("scripted flow: %d cycles, want 1", res.Cycles)
	}
	if err := core.Verify(res, 15, 3); err != nil {
		t.Fatal(err)
	}
}

func TestScriptPartialUnroll(t *testing.T) {
	// Partial unroll keeps the loop: the design falls back to
	// sequential control and still verifies.
	s, err := script.Parse(`
preset microprocessor
inline
drop-uncalled
unroll main.2 2
constprop
dce
`)
	if err != nil {
		t.Fatal(err)
	}
	p := ild.Program(4)
	res, err := core.Synthesize(p, core.FromScript(s))
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(res, 10, 3); err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 1 {
		t.Errorf("partially unrolled loop should need several states, got %d", res.Cycles)
	}
}

func TestClassicalScript(t *testing.T) {
	s, err := script.Parse("preset classical\ninline\ndce")
	if err != nil {
		t.Fatal(err)
	}
	opt := core.FromScript(s)
	if opt.Preset != core.ClassicalASIC {
		t.Error("classical preset not mapped")
	}
}
