package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"sparkgo/internal/blob"
	"sparkgo/internal/explore"
)

// errStreamingUnsupported is answered when the transport cannot flush —
// SSE needs an http.Flusher.
var errStreamingUnsupported = errors.New("service: response writer does not support streaming")

// Server wires the queue to the HTTP API cmd/sparkd serves. Use
// NewServer and mount the handler; job payloads are JSON, blob payloads
// raw bytes.
type Server struct {
	queue   *Queue
	mux     *http.ServeMux
	started time.Time

	// Blob-API traffic counters (the server side of peers' remote
	// tiers), snapshotted into /v1/stats.
	blobGets    atomic.Int64
	blobHits    atomic.Int64
	blobPuts    atomic.Int64
	blobDeletes atomic.Int64
	blobErrors  atomic.Int64
}

// NewServer builds the HTTP front end over a queue.
func NewServer(q *Queue) *Server {
	s := &Server{queue: q, mux: http.NewServeMux(), started: time.Now()}
	s.mux.HandleFunc("POST /v1/jobs", s.submit)
	s.mux.HandleFunc("GET /v1/jobs", s.list)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.get)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.jobEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancel)
	// "GET" patterns also match HEAD (presence probe without the body).
	s.mux.HandleFunc("GET /v1/blobs/{kind}/{key}", s.blobGet)
	s.mux.HandleFunc("PUT /v1/blobs/{kind}/{key}", s.blobPut)
	s.mux.HandleFunc("DELETE /v1/blobs/{kind}/{key}", s.blobDelete)
	s.mux.HandleFunc("GET /v1/stats", s.stats)
	s.mux.HandleFunc("GET /metrics", s.metrics)
	s.mux.HandleFunc("GET /healthz", s.healthz)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// submit handles POST /v1/jobs: decode, enqueue (or attach to the
// in-flight identical job), and answer 202 with the job view. A deduped
// submit is flagged so clients know they are polling shared work.
func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, deduped, err := s.queue.Submit(req)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrDraining) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	v := s.queue.View(job, false)
	v.Deduped = deduped
	writeJSON(w, http.StatusAccepted, v)
}

// list handles GET /v1/jobs: every job in issue order, without results.
func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.queue.List())
}

// get handles GET /v1/jobs/{id}: the poll endpoint; terminal jobs carry
// their result (points, frontier, trajectory) inline.
func (s *Server) get(w http.ResponseWriter, r *http.Request) {
	job, err := s.queue.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, s.queue.View(job, true))
}

// cancel handles DELETE /v1/jobs/{id}: queued jobs die immediately,
// running jobs stop at the next evaluation-batch boundary. The response
// is the job's state at cancel time; clients poll for the terminal
// status.
func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	job, err := s.queue.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, s.queue.View(job, true))
}

// blobCheck validates the {kind} path element and the schema header
// shared by every blob handler. Unknown kinds are 404; a schema skew is
// 412 (precondition failed), which remote-tier clients read as a clean
// miss — version skew across a fleet degrades to local work instead of
// aliasing artifacts across schemas.
func (s *Server) blobCheck(w http.ResponseWriter, r *http.Request) (kind, key string, ok bool) {
	kind, key = r.PathValue("kind"), r.PathValue("key")
	if !explore.ValidArtifactKind(kind) {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown blob kind %q", kind))
		return "", "", false
	}
	if h := r.Header.Get(blob.SchemaHeader); h != "" && h != explore.DiskSchema() {
		w.Header().Set(blob.SchemaHeader, explore.DiskSchema())
		writeError(w, http.StatusPreconditionFailed,
			fmt.Errorf("schema mismatch: server %s, request %s", explore.DiskSchema(), h))
		return "", "", false
	}
	return kind, key, true
}

// blobGet handles GET and HEAD /v1/blobs/{kind}/{key}: the read side of
// the remote cache tier. Payloads are served from the daemon's local
// tiers only (memory, disk) — never proxied through its own remote
// tier, so chained daemons cannot loop. GET responses carry the payload
// digest for end-to-end verification.
func (s *Server) blobGet(w http.ResponseWriter, r *http.Request) {
	kind, key, ok := s.blobCheck(w, r)
	if !ok {
		return
	}
	eng := s.queue.Engine()
	if r.Method == http.MethodHead {
		found, err := eng.BlobStat(kind, key)
		if err != nil {
			s.blobErrors.Add(1)
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		if !found {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.Header().Set(blob.SchemaHeader, explore.DiskSchema())
		w.WriteHeader(http.StatusOK)
		return
	}
	s.blobGets.Add(1)
	data, found, err := eng.BlobGet(kind, key)
	if err != nil {
		s.blobErrors.Add(1)
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !found {
		writeError(w, http.StatusNotFound, fmt.Errorf("blob %s/%s not found", kind, key))
		return
	}
	s.blobHits.Add(1)
	sum := sha256.Sum256(data)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Header().Set(blob.Sha256Header, hex.EncodeToString(sum[:]))
	w.Header().Set(blob.SchemaHeader, explore.DiskSchema())
	_, _ = w.Write(data)
}

// blobPut handles PUT /v1/blobs/{kind}/{key}: the write-through side of
// the remote tier. The declared digest (when present) is verified before
// anything is stored, so a truncated upload cannot poison the cache.
func (s *Server) blobPut(w http.ResponseWriter, r *http.Request) {
	kind, key, ok := s.blobCheck(w, r)
	if !ok {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, blob.MaxRemoteBytes))
	if err != nil {
		s.blobErrors.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading blob body: %w", err))
		return
	}
	if want := r.Header.Get(blob.Sha256Header); want != "" {
		sum := sha256.Sum256(body)
		if got := hex.EncodeToString(sum[:]); got != want {
			s.blobErrors.Add(1)
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("blob %s/%s: payload hash mismatch", kind, key))
			return
		}
	}
	if err := s.queue.Engine().BlobPut(kind, key, body); err != nil {
		s.blobErrors.Add(1)
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.blobPuts.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

// blobDelete handles DELETE /v1/blobs/{kind}/{key}; deleting an absent
// blob succeeds.
func (s *Server) blobDelete(w http.ResponseWriter, r *http.Request) {
	kind, key, ok := s.blobCheck(w, r)
	if !ok {
		return
	}
	if err := s.queue.Engine().BlobDelete(kind, key); err != nil {
		s.blobErrors.Add(1)
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.blobDeletes.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

// stats handles GET /v1/stats, attaching the server's blob-API counters
// to the queue's snapshot.
func (s *Server) stats(w http.ResponseWriter, r *http.Request) {
	v := s.queue.Stats()
	v.Blobs = BlobStatsView{
		Gets:    s.blobGets.Load(),
		Hits:    s.blobHits.Load(),
		Puts:    s.blobPuts.Load(),
		Deletes: s.blobDeletes.Load(),
		Errors:  s.blobErrors.Load(),
	}
	writeJSON(w, http.StatusOK, v)
}

// metrics handles GET /metrics: the engine bus's folded metrics in
// Prometheus text exposition format. A daemon whose engine runs without
// a bus serves an empty (but valid) exposition rather than 404, so
// scrape configs need not care how the daemon was wired.
func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.queue.Engine().Obs.Registry().WritePrometheus(w)
}

// healthView is the /healthz payload.
type healthView struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	GoVersion     string  `json:"go_version"`
	Revision      string  `json:"revision,omitempty"`
}

// healthz handles GET /healthz: liveness for load balancers and CI,
// with enough build identity to tell which binary is answering.
func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	v := healthView{
		Status:        "ok",
		UptimeSeconds: time.Since(s.started).Seconds(),
		GoVersion:     runtime.Version(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				v.Revision = kv.Value
			}
		}
	}
	writeJSON(w, http.StatusOK, v)
}
