package service

import (
	"encoding/json"
	"errors"
	"net/http"
)

// Server wires the queue to the HTTP API cmd/sparkd serves. Use
// NewServer and mount the handler; all payloads are JSON.
type Server struct {
	queue *Queue
	mux   *http.ServeMux
}

// NewServer builds the HTTP front end over a queue.
func NewServer(q *Queue) *Server {
	s := &Server{queue: q, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.submit)
	s.mux.HandleFunc("GET /v1/jobs", s.list)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.get)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancel)
	s.mux.HandleFunc("GET /v1/stats", s.stats)
	s.mux.HandleFunc("GET /healthz", s.healthz)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// submit handles POST /v1/jobs: decode, enqueue (or attach to the
// in-flight identical job), and answer 202 with the job view. A deduped
// submit is flagged so clients know they are polling shared work.
func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, deduped, err := s.queue.Submit(req)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrDraining) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	v := s.queue.View(job, false)
	v.Deduped = deduped
	writeJSON(w, http.StatusAccepted, v)
}

// list handles GET /v1/jobs: every job in issue order, without results.
func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.queue.List())
}

// get handles GET /v1/jobs/{id}: the poll endpoint; terminal jobs carry
// their result (points, frontier, trajectory) inline.
func (s *Server) get(w http.ResponseWriter, r *http.Request) {
	job, err := s.queue.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, s.queue.View(job, true))
}

// cancel handles DELETE /v1/jobs/{id}: queued jobs die immediately,
// running jobs stop at the next evaluation-batch boundary. The response
// is the job's state at cancel time; clients poll for the terminal
// status.
func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	job, err := s.queue.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, s.queue.View(job, true))
}

// stats handles GET /v1/stats.
func (s *Server) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.queue.Stats())
}

// healthz handles GET /healthz: liveness for load balancers and CI.
func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}
