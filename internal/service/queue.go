package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sparkgo/internal/explore"
	"sparkgo/internal/obs"
)

// ErrDraining is returned by Submit once Drain has begun: the daemon is
// shutting down and accepts no new work.
var ErrDraining = errors.New("service: queue is draining")

// ErrNotFound is returned for job IDs the queue has never issued.
var ErrNotFound = errors.New("service: no such job")

// Job is one unit of queued work. All mutable fields are guarded by the
// owning queue's lock; external readers get consistent snapshots via
// View.
type Job struct {
	ID  string
	Key string
	Req Request

	status    Status
	coalesced int
	progress  Progress
	created   time.Time
	started   time.Time
	finished  time.Time
	errMsg    string
	result    *Result
	sourceFP  string

	// cancelRequested distinguishes a DELETE'd job from one whose own
	// deadline expired — both surface as a context error to the run.
	cancelRequested bool
	cancel          context.CancelFunc
	done            chan struct{}

	// stream is the job's live event log, created at submit and closed
	// by finishLocked after the terminal event; the SSE endpoint
	// subscribes to it.
	stream *jobStream
}

// Done returns a channel closed when the job reaches a terminal status.
func (j *Job) Done() <-chan struct{} { return j.done }

// Queue runs jobs from many clients on a bounded worker pool over one
// shared exploration engine. In-flight requests with the same canonical
// key are single-flighted: a duplicate submit attaches to the existing
// job instead of enqueueing work the engine would only re-derive.
// Dequeue order is priority-first (higher first), FIFO within a level.
type Queue struct {
	eng        *explore.Engine
	gcMaxBytes int64

	mu      sync.Mutex
	cond    *sync.Cond
	jobs    map[string]*Job
	order   []string        // issue order, for listing
	pending []*Job          // queued jobs awaiting a worker
	active  map[string]*Job // single-flight table: key → queued/running job
	nextID  int
	closed  bool
	wg      sync.WaitGroup

	submitted     int64
	coalesced     int64
	doneCount     int64
	failed        int64
	canceled      int64
	running       int
	terminalCount int

	gcRuns         int64
	gcRemovedFiles int64
	gcRemovedBytes int64
	gcErrors       int64
	// gcPerKind accumulates removal counters per artifact kind across
	// GC runs (lazily allocated on the first eviction).
	gcPerKind map[string]*KindGCView
	lastGC    time.Time

	// streams accounts SSE subscriptions across all job streams.
	streams streamCounters
}

// NewQueue starts a queue with the given worker-pool size (<=0: 1) over
// the shared engine. gcMaxBytes > 0 garbage-collects the engine's disk
// cache down to that budget after jobs finish — the knob that keeps a
// long-lived shared deployment's cache directory bounded.
func NewQueue(eng *explore.Engine, workers int, gcMaxBytes int64) *Queue {
	if workers <= 0 {
		workers = 1
	}
	q := &Queue{
		eng:        eng,
		gcMaxBytes: gcMaxBytes,
		jobs:       map[string]*Job{},
		active:     map[string]*Job{},
	}
	q.cond = sync.NewCond(&q.mu)
	for w := 0; w < workers; w++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

// Engine exposes the shared engine (the stats endpoint reads it).
func (q *Queue) Engine() *explore.Engine { return q.eng }

// Submit normalizes, keys, and enqueues a request. When an identical
// request is already queued or running, the existing job is returned
// with deduped=true — the single flight — and no new work is enqueued.
func (q *Queue) Submit(req Request) (job *Job, deduped bool, err error) {
	if err := req.Normalize(); err != nil {
		return nil, false, err
	}
	// Parse/register the source before taking the queue lock: the key
	// must hash the content fingerprint, and parse errors are submit
	// errors, not job failures.
	sourceFP, err := resolveSource(q.eng, &req)
	if err != nil {
		return nil, false, err
	}
	key := req.key(sourceFP)

	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, false, ErrDraining
	}
	if j, ok := q.active[key]; ok {
		j.coalesced++
		q.coalesced++
		// The duplicate's client still cares about latency: a coalesced
		// submit at higher priority boosts the shared job rather than
		// silently running at the original's priority.
		if req.Priority > j.Req.Priority {
			j.Req.Priority = req.Priority
		}
		q.publishJob(j, obs.Event{Type: obs.TypeJob, Op: "coalesced", Kind: string(j.Req.Kind)})
		return j, true, nil
	}
	q.nextID++
	j := &Job{
		ID:       fmt.Sprintf("j%d", q.nextID),
		Key:      key,
		Req:      req,
		status:   StatusQueued,
		created:  time.Now(),
		sourceFP: sourceFP,
		done:     make(chan struct{}),
		stream:   newJobStream(&q.streams),
	}
	q.jobs[j.ID] = j
	q.order = append(q.order, j.ID)
	q.active[key] = j
	q.pending = append(q.pending, j)
	q.submitted++
	q.publishJob(j, obs.Event{Type: obs.TypeJob, Op: "submitted", Kind: string(j.Req.Kind)})
	q.cond.Signal()
	return j, false, nil
}

// Get returns a job by ID.
func (q *Queue) Get(id string) (*Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// Cancel stops a job: a queued job is removed from the queue and marked
// canceled immediately; a running job has its context cancelled and
// stops at the next evaluation-batch boundary. Cancelling a terminal
// job is a no-op.
func (q *Queue) Cancel(id string) (*Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	switch j.status {
	case StatusQueued:
		q.removePending(j)
		q.finishLocked(j, StatusCanceled, "canceled before start", nil)
	case StatusRunning:
		j.cancelRequested = true
		j.cancel()
	}
	return j, nil
}

// removePending drops a job from the pending slice (caller holds mu).
func (q *Queue) removePending(j *Job) {
	for i, p := range q.pending {
		if p == j {
			q.pending = append(q.pending[:i], q.pending[i+1:]...)
			return
		}
	}
}

// maxRetainedJobs caps the terminal jobs (and their result payloads —
// point clouds, trajectories) kept for polling. A long-lived daemon
// would otherwise grow without bound; the cumulative counters in Stats
// are unaffected by eviction. Clients that poll within the retention
// window — the only sane pattern — never notice; a poll for an evicted
// job gets 404.
const maxRetainedJobs = 1024

// finishLocked moves a job to a terminal status (caller holds mu).
func (q *Queue) finishLocked(j *Job, st Status, errMsg string, res *Result) {
	if j.status.Terminal() {
		return
	}
	j.status = st
	j.errMsg = errMsg
	j.result = res
	j.finished = time.Now()
	delete(q.active, j.Key)
	switch st {
	case StatusDone:
		q.doneCount++
	case StatusFailed:
		q.failed++
	case StatusCanceled:
		q.canceled++
	}
	q.terminalCount++
	ev := obs.Event{Type: obs.TypeJob, Op: string(st), Kind: string(j.Req.Kind), Err: errMsg}
	if p := j.progress; p != (Progress{}) {
		ev.Done, ev.Total = p.Done, p.Total
	}
	q.publishJob(j, ev)
	// The terminal event is the last frame any subscriber sees: closing
	// the stream ends every live SSE connection after it drains.
	j.stream.close()
	close(j.done)
	q.cond.Broadcast()
	q.evictTerminalLocked()
}

// evictTerminalLocked drops the oldest terminal jobs over the retention
// cap (caller holds mu). Live jobs are never evicted, so the table is
// bounded by maxRetainedJobs plus whatever is actually in flight.
func (q *Queue) evictTerminalLocked() {
	for q.terminalCount > maxRetainedJobs {
		evicted := false
		for i, id := range q.order {
			if j := q.jobs[id]; j.status.Terminal() {
				delete(q.jobs, id)
				q.order = append(q.order[:i], q.order[i+1:]...)
				q.terminalCount--
				evicted = true
				break
			}
		}
		if !evicted {
			return
		}
	}
}

// pop dequeues the next job: highest priority first, FIFO within a
// level (caller holds mu; pending is non-empty).
func (q *Queue) pop() *Job {
	best := 0
	for i := 1; i < len(q.pending); i++ {
		if q.pending[i].Req.Priority > q.pending[best].Req.Priority {
			best = i
		}
	}
	j := q.pending[best]
	q.pending = append(q.pending[:best], q.pending[best+1:]...)
	return j
}

// worker is one pool goroutine: dequeue, run, finish, repeat until the
// queue is drained.
func (q *Queue) worker() {
	defer q.wg.Done()
	for {
		q.mu.Lock()
		for len(q.pending) == 0 && !q.closed {
			q.cond.Wait()
		}
		if len(q.pending) == 0 {
			q.mu.Unlock()
			return
		}
		j := q.pop()
		ctx, cancel := context.WithCancel(context.Background())
		if j.Req.DeadlineMS > 0 {
			ctx, cancel = context.WithTimeout(ctx, time.Duration(j.Req.DeadlineMS)*time.Millisecond)
		}
		j.cancel = cancel
		j.status = StatusRunning
		j.started = time.Now()
		q.running++
		q.publishJob(j, obs.Event{Type: obs.TypeJob, Op: "started", Kind: string(j.Req.Kind)})
		q.mu.Unlock()

		res, runErr := q.execute(ctx, j)
		cancel()

		q.mu.Lock()
		q.running--
		switch {
		case runErr == nil:
			// execute's own verdict decides: a cancel or deadline that
			// fires in the gap after successful completion must not
			// flip a done job to canceled/failed.
			q.finishLocked(j, StatusDone, "", res)
		case j.cancelRequested && ctx.Err() != nil:
			// A cancelled search still carries its partial trajectory.
			q.finishLocked(j, StatusCanceled, "canceled", res)
		case ctx.Err() == context.DeadlineExceeded:
			q.finishLocked(j, StatusFailed, "deadline exceeded", res)
		default:
			q.finishLocked(j, StatusFailed, runErr.Error(), nil)
		}
		q.mu.Unlock()
		q.maybeGC()
	}
}

// Drain stops intake and waits for every accepted job — running and
// still queued — to finish. When ctx expires first, everything
// outstanding is cancelled and Drain still waits for the workers to
// wind down before returning the context error, so the engine is
// guaranteed quiescent either way.
func (q *Queue) Drain(ctx context.Context) error {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		q.mu.Lock()
		for _, j := range q.active {
			switch j.status {
			case StatusQueued:
				q.removePending(j)
				q.finishLocked(j, StatusCanceled, "canceled by drain", nil)
			case StatusRunning:
				j.cancelRequested = true
				j.cancel()
			}
		}
		q.mu.Unlock()
		<-finished
		return ctx.Err()
	}
}

// gcInterval throttles post-job cache GC: a GC pass walks the whole
// cache directory, so running one after every millisecond-scale cached
// job from every worker would spend more I/O scanning than evicting.
const gcInterval = 30 * time.Second

// maybeGC applies the queue's byte budget to the engine's disk cache
// after a job finishes — at most once per gcInterval across workers —
// accumulating the counters /v1/stats reports.
func (q *Queue) maybeGC() {
	if q.gcMaxBytes <= 0 || q.eng.CacheDir == "" {
		return
	}
	q.mu.Lock()
	if !q.lastGC.IsZero() && time.Since(q.lastGC) < gcInterval {
		q.mu.Unlock()
		return
	}
	q.lastGC = time.Now()
	q.mu.Unlock()

	st, err := q.eng.CacheGC(q.gcMaxBytes)
	q.mu.Lock()
	defer q.mu.Unlock()
	q.gcRuns++
	if err != nil {
		q.gcErrors++
		return
	}
	q.gcRemovedFiles += int64(st.RemovedFiles)
	q.gcRemovedBytes += st.RemovedBytes
	for _, k := range st.Kinds {
		if k.RemovedFiles == 0 {
			continue
		}
		if q.gcPerKind == nil {
			q.gcPerKind = map[string]*KindGCView{}
		}
		acc := q.gcPerKind[k.Kind]
		if acc == nil {
			acc = &KindGCView{Kind: k.Kind}
			q.gcPerKind[k.Kind] = acc
		}
		acc.RemovedFiles += int64(k.RemovedFiles)
		acc.RemovedBytes += k.RemovedBytes
	}
}

// setProgress updates a job's progress counter and publishes it as a
// progress event, so pollers and stream subscribers advance together.
func (q *Queue) setProgress(j *Job, done, total int) {
	q.mu.Lock()
	j.progress = Progress{Done: done, Total: total}
	q.publishJob(j, obs.Event{Type: obs.TypeProgress, Kind: string(j.Req.Kind), Done: done, Total: total})
	q.mu.Unlock()
}

// View snapshots a job for JSON rendering; includeResult attaches the
// payload (poll responses include it once terminal, list responses stay
// slim).
func (q *Queue) View(j *Job, includeResult bool) JobView {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.viewLocked(j, includeResult)
}

// viewLocked is View with the queue lock already held.
func (q *Queue) viewLocked(j *Job, includeResult bool) JobView {
	v := JobView{
		ID:        j.ID,
		Key:       j.Key,
		Kind:      j.Req.Kind,
		Status:    j.status,
		Priority:  j.Req.Priority,
		Coalesced: j.coalesced,
		Created:   j.created,
		Error:     j.errMsg,
	}
	if j.progress != (Progress{}) {
		p := j.progress
		v.Progress = &p
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if includeResult && j.status.Terminal() {
		v.Result = j.result
	}
	return v
}

// List snapshots every job in issue order, atomically under one lock
// hold so the listing is a consistent picture of the queue.
func (q *Queue) List() []JobView {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]JobView, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, q.viewLocked(q.jobs[id], false))
	}
	return out
}

// Stats snapshots the /v1/stats payload: shared-engine cache counters,
// queue accounting, and GC accounting under the current cache schema.
func (q *Queue) Stats() StatsView {
	es := q.eng.Stats()
	q.mu.Lock()
	defer q.mu.Unlock()
	return StatsView{
		CacheSchema:   explore.DiskSchema(),
		StageVersions: explore.Versions(),
		Engine:        engineStatsView(es),
		Queue: QueueStatsView{
			Submitted: q.submitted,
			Coalesced: q.coalesced,
			Queued:    len(q.pending),
			Running:   q.running,
			Done:      q.doneCount,
			Failed:    q.failed,
			Canceled:  q.canceled,
		},
		GC: GCStatsView{
			Runs:         q.gcRuns,
			RemovedFiles: q.gcRemovedFiles,
			RemovedBytes: q.gcRemovedBytes,
			Errors:       q.gcErrors,
			PerKind:      q.gcPerKindLocked(),
		},
		Events: q.eventStatsLocked(),
	}
}

// eventStatsLocked snapshots bus and SSE-stream accounting (caller
// holds the queue lock; the counters themselves are atomic).
func (q *Queue) eventStatsLocked() EventStatsView {
	bs := q.eng.Obs.Stats()
	return EventStatsView{
		BusPublished:       bs.Published,
		BusDropped:         bs.Dropped,
		BusSubscribers:     bs.Subscribers,
		StreamsOpened:      q.streams.opened.Load(),
		StreamsActive:      q.streams.active.Load(),
		SubscribersDropped: q.streams.dropped.Load(),
	}
}

// gcPerKindLocked snapshots the cumulative per-kind eviction counters,
// sorted by kind name. Caller holds the queue lock.
func (q *Queue) gcPerKindLocked() []KindGCView {
	if len(q.gcPerKind) == 0 {
		return nil
	}
	out := make([]KindGCView, 0, len(q.gcPerKind))
	for _, k := range q.gcPerKind {
		out = append(out, *k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}
