package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"sparkgo/internal/explore"
	"sparkgo/internal/ild"
	"sparkgo/internal/ir"
)

// slowEngine is an engine whose generator sleeps at blocker scales (see
// service_test.go) so queue tests can hold workers busy on demand.
func slowEngine() *explore.Engine {
	return &explore.Engine{
		Workers:   2,
		SimTrials: 0,
		Source: func(n int) *ir.Program {
			if n > blockerScale {
				time.Sleep(300 * time.Millisecond)
				n = 4
			}
			return ild.Program(n)
		},
	}
}

// TestDrainFinishesAcceptedWork: Drain must complete queued and running
// jobs, then reject new submits with ErrDraining.
func TestDrainFinishesAcceptedWork(t *testing.T) {
	q := NewQueue(slowEngine(), 1, 0)
	blocker, _, err := q.Submit(Request{Kind: KindSynth, N: blockerScale + 1})
	if err != nil {
		t.Fatal(err)
	}
	queued, _, err := q.Submit(Request{Kind: KindSynth, N: 4})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := q.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, j := range []*Job{blocker, queued} {
		if v := q.View(j, false); v.Status != StatusDone {
			t.Errorf("job %s after drain: %s (%s), want done", j.ID, v.Status, v.Error)
		}
	}
	if _, _, err := q.Submit(Request{Kind: KindSynth, N: 4}); !errors.Is(err, ErrDraining) {
		t.Errorf("submit after drain: err=%v, want ErrDraining", err)
	}
}

// TestDrainTimeoutCancelsOutstanding: an expired drain context cancels
// queued and running jobs instead of waiting forever.
func TestDrainTimeoutCancelsOutstanding(t *testing.T) {
	q := NewQueue(slowEngine(), 1, 0)
	// A search at a blocker scale holds the one worker: its first
	// evaluation sleeps in the source generator well past the drain
	// deadline, so the search cannot go stale and legitimately finish
	// before the cancellation lands (a plain n=16 search occasionally
	// did, flaking this test).
	running, _, err := q.Submit(Request{Kind: KindSearch, N: blockerScale + 1, Budget: 1000000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	queued, _, err := q.Submit(Request{Kind: KindSynth, N: 8})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := q.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain: err=%v, want deadline exceeded", err)
	}
	if v := q.View(running, false); v.Status != StatusCanceled {
		t.Errorf("running job after cut-short drain: %s, want canceled", v.Status)
	}
	if v := q.View(queued, false); v.Status != StatusCanceled {
		t.Errorf("queued job after cut-short drain: %s, want canceled", v.Status)
	}
}

// TestCancelQueuedJob: cancelling a job that never started is immediate
// and the worker never runs it.
func TestCancelQueuedJob(t *testing.T) {
	q := NewQueue(slowEngine(), 1, 0)
	if _, _, err := q.Submit(Request{Kind: KindSynth, N: blockerScale + 1}); err != nil {
		t.Fatal(err)
	}
	queued, _, err := q.Submit(Request{Kind: KindSynth, N: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	select {
	case <-queued.Done():
	case <-time.After(time.Second):
		t.Fatal("cancelled queued job did not finish immediately")
	}
	if v := q.View(queued, false); v.Status != StatusCanceled {
		t.Errorf("status %s, want canceled", v.Status)
	}
	// A fresh identical submit must NOT coalesce onto the canceled job.
	again, deduped, err := q.Submit(Request{Kind: KindSynth, N: 8})
	if err != nil {
		t.Fatal(err)
	}
	if deduped || again.ID == queued.ID {
		t.Errorf("submit after cancel coalesced onto dead job %s", queued.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = q.Drain(ctx)
}

// TestPriorityOrdersQueue: with one worker pinned, a later high-priority
// job must run before earlier low-priority ones.
func TestPriorityOrdersQueue(t *testing.T) {
	q := NewQueue(slowEngine(), 1, 0)
	if _, _, err := q.Submit(Request{Kind: KindSynth, N: blockerScale + 1}); err != nil {
		t.Fatal(err)
	}
	low, _, err := q.Submit(Request{Kind: KindSynth, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	high, _, err := q.Submit(Request{Kind: KindSynth, N: 8, Priority: 5})
	if err != nil {
		t.Fatal(err)
	}
	<-high.Done()
	hv := q.View(high, false)
	lv := q.View(low, false)
	if lv.Status == StatusDone && lv.Finished.Before(*hv.Finished) {
		t.Errorf("low-priority job finished before high-priority one")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = q.Drain(ctx)
}

// TestJobDeadlineFails: a job whose own deadline expires mid-run fails
// with the deadline error rather than hanging.
func TestJobDeadlineFails(t *testing.T) {
	q := NewQueue(slowEngine(), 1, 0)
	j, _, err := q.Submit(Request{Kind: KindSearch, N: 16, Budget: 1000000, Seed: 5, DeadlineMS: 200})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("deadlined job never finished")
	}
	if v := q.View(j, false); v.Status != StatusFailed || v.Error != "deadline exceeded" {
		t.Errorf("status %s (%q), want failed with deadline exceeded", v.Status, v.Error)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = q.Drain(ctx)
}

// TestSynthKeyEscapesPassSpecs: the single-flight key must distinguish
// a pass list containing "; " inside one spec from the same text split
// across two specs — the canonical Config rendering escapes the joiner.
func TestSynthKeyEscapesPassSpecs(t *testing.T) {
	r1 := Request{Kind: KindSynth, Passes: []string{"constprop; cse"}}
	r2 := Request{Kind: KindSynth, Passes: []string{"constprop", "cse"}}
	if err := r1.Normalize(); err != nil {
		t.Fatal(err)
	}
	if err := r2.Normalize(); err != nil {
		t.Fatal(err)
	}
	if r1.key("") == r2.key("") {
		t.Errorf("distinct pass lists %q and %q share a job key: submits would coalesce across requests",
			r1.Passes, r2.Passes)
	}
}
