package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"sparkgo/internal/blob"
	"sparkgo/internal/explore"
)

// newNode builds a disk-backed engine plus a blob-serving daemon over
// it, returning the engine and the server's base URL.
func newNode(t *testing.T, remote string) (*explore.Engine, *httptest.Server) {
	t.Helper()
	eng := &explore.Engine{Workers: 2, SimTrials: 1, CacheDir: t.TempDir(), RemoteCache: remote}
	srv := httptest.NewServer(NewServer(NewQueue(eng, 1, 0)))
	t.Cleanup(srv.Close)
	return eng, srv
}

// TestTwoNodeRemoteCache pins the tentpole guarantee: a disk-cold
// engine chained onto a warm peer's /v1/blobs API completes the same
// sweep with ZERO frontend, midend, backend, and point recomputation —
// every artifact arrives over HTTP — and the remote hits backfill its
// local disk, so a third engine over that directory needs neither the
// peer nor recomputation.
func TestTwoNodeRemoteCache(t *testing.T) {
	engA, srvA := newNode(t, "")
	space := explore.Grid([]int{4, 6}, explore.Variants(), []int{0}, true)
	ptsA := engA.Sweep(space)
	for _, p := range ptsA {
		if p.Err != "" {
			t.Fatalf("warm-up sweep failed: %v", p.Err)
		}
	}

	engB, _ := newNode(t, srvA.URL)
	ptsB := engB.Sweep(space)
	if !reflect.DeepEqual(ptsA, ptsB) {
		t.Fatal("remote-warmed sweep disagrees with the origin sweep")
	}
	s := engB.Stats()
	if n := s.PointComputed + s.FrontendComputed + s.MidendComputed + s.BackendComputed; n != 0 {
		t.Fatalf("disk-cold node recomputed %d artifacts with a warm peer: %+v", n, s)
	}
	if s.PointRemoteHits != int64(len(space)) {
		t.Fatalf("PointRemoteHits = %d, want %d: %+v", s.PointRemoteHits, len(space), s)
	}
	if s.RemoteErrors != 0 || s.DiskErrors != 0 {
		t.Fatalf("errors during remote-warmed sweep: %+v", s)
	}
	// Every remote hit must have backfilled B's local tiers.
	if s.DiskBackfills == 0 || s.MemBackfills == 0 {
		t.Fatalf("remote hits did not backfill local tiers: %+v", s)
	}

	// Third engine over B's now-warm disk, no remote: everything local.
	engC := &explore.Engine{Workers: 2, SimTrials: 1, CacheDir: engB.CacheDir}
	ptsC := engC.Sweep(space)
	if !reflect.DeepEqual(ptsA, ptsC) {
		t.Fatal("disk-backfilled sweep disagrees with the origin sweep")
	}
	sc := engC.Stats()
	if n := sc.PointComputed + sc.FrontendComputed + sc.MidendComputed + sc.BackendComputed; n != 0 {
		t.Fatalf("backfilled disk did not serve the sweep: %+v", sc)
	}
	if sc.PointDiskHits != int64(len(space)) {
		t.Fatalf("PointDiskHits = %d, want %d: %+v", sc.PointDiskHits, len(space), sc)
	}
}

// TestTwoNodeWriteThrough: the remote tier is write-through, so a sweep
// on a node chained to a cold peer warms the PEER too — the fleet's
// cache fills from whichever node works first.
func TestTwoNodeWriteThrough(t *testing.T) {
	engA, srvA := newNode(t, "")
	engB, _ := newNode(t, srvA.URL)
	space := explore.Grid([]int{4}, explore.Variants(), []int{0}, false)
	if pts := engB.Sweep(space); pts[0].Err != "" {
		t.Fatalf("sweep failed: %v", pts[0].Err)
	}
	// A never ran a sweep; its disk must still hold B's artifacts.
	ptsA := engA.Sweep(space)
	sa := engA.Stats()
	if sa.PointComputed != 0 {
		t.Fatalf("write-through did not warm the peer: %+v", sa)
	}
	if !reflect.DeepEqual(engB.Sweep(space), ptsA) {
		t.Fatal("peer-served points disagree")
	}
}

// TestBlobAPIRoundTrip exercises the raw /v1/blobs surface: PUT, GET
// (digest header), HEAD, DELETE, unknown kinds, and schema skew.
func TestBlobAPIRoundTrip(t *testing.T) {
	_, srv := newNode(t, "")
	client := srv.Client()
	url := srv.URL + "/v1/blobs/point/somekey"
	payload := []byte("some artifact bytes")
	sum := sha256.Sum256(payload)

	put := func(url string, body []byte, schema string) *http.Response {
		req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		s := sha256.Sum256(body)
		req.Header.Set(blob.Sha256Header, hex.EncodeToString(s[:]))
		if schema != "" {
			req.Header.Set(blob.SchemaHeader, schema)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := put(url, payload, explore.DiskSchema()); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT = %s", resp.Status)
	}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, payload) {
		t.Fatalf("GET = %s, %d bytes", resp.Status, len(body))
	}
	if got := resp.Header.Get(blob.Sha256Header); got != hex.EncodeToString(sum[:]) {
		t.Fatalf("GET digest header = %q", got)
	}
	head, err := client.Head(url)
	if err != nil {
		t.Fatal(err)
	}
	head.Body.Close()
	if head.StatusCode != http.StatusOK {
		t.Fatalf("HEAD = %s", head.Status)
	}

	// Unknown kind: 404. Schema skew: 412. Corrupt digest: 400.
	if resp := put(srv.URL+"/v1/blobs/bogus/k", payload, ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("PUT bogus kind = %s", resp.Status)
	}
	if resp := put(url, payload, "other-schema"); resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("PUT schema skew = %s", resp.Status)
	}
	req, _ := http.NewRequest(http.MethodPut, url, bytes.NewReader(payload))
	req.Header.Set(blob.Sha256Header, hex.EncodeToString(bytes.Repeat([]byte{0xab}, 32)))
	if resp, err := client.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("PUT wrong digest = %s", resp.Status)
		}
	}

	// DELETE, then the blob is gone.
	req, _ = http.NewRequest(http.MethodDelete, url, nil)
	if resp, err := client.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("DELETE = %s", resp.Status)
		}
	}
	if resp, err := client.Get(url); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET after DELETE = %s", resp.Status)
		}
	}
}

// TestRemoteStoreAgainstServer drives the blob.Remote client against a
// real daemon — the exact pairing the remote tier uses — including the
// miss, store, load, stat, and delete verbs.
func TestRemoteStoreAgainstServer(t *testing.T) {
	_, srv := newNode(t, "")
	r := &blob.Remote{Base: srv.URL, Schema: explore.DiskSchema(), Client: srv.Client()}
	if _, ok, err := r.Get("frontend", "k"); ok || err != nil {
		t.Fatalf("cold Get = ok %v err %v", ok, err)
	}
	if err := r.Put("frontend", "k", []byte("artifact")); err != nil {
		t.Fatal(err)
	}
	data, ok, err := r.Get("frontend", "k")
	if err != nil || !ok || string(data) != "artifact" {
		t.Fatalf("Get = %q, %v, %v", data, ok, err)
	}
	if ok, err := r.Stat("frontend", "k"); err != nil || !ok {
		t.Fatalf("Stat = %v, %v", ok, err)
	}
	if err := r.Delete("frontend", "k"); err != nil {
		t.Fatal(err)
	}
	if ok, _ := r.Stat("frontend", "k"); ok {
		t.Fatal("Stat after Delete = true")
	}
	// Version skew must read as a miss, never as an error or a payload.
	skew := &blob.Remote{Base: srv.URL, Schema: "future-schema", Client: srv.Client()}
	if err := r.Put("frontend", "k2", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := skew.Get("frontend", "k2"); ok || err != nil {
		t.Fatalf("skewed Get = ok %v err %v, want clean miss", ok, err)
	}
}

// TestStatsAttributesTiers: /v1/stats must attribute every lookup of a
// remote-warmed sweep to its tier — remote hits on the engine side,
// blob-API traffic on the serving side.
func TestStatsAttributesTiers(t *testing.T) {
	engA, srvA := newNode(t, "")
	space := explore.Grid([]int{4}, explore.Variants(), []int{0}, false)
	if pts := engA.Sweep(space); pts[0].Err != "" {
		t.Fatalf("warm-up failed: %v", pts[0].Err)
	}
	engB, srvB := newNode(t, srvA.URL)
	engB.Sweep(space)

	var vb StatsView
	getJSON(t, srvB.URL+"/v1/stats", &vb)
	if vb.Engine.PointRemoteHits != int64(len(space)) {
		t.Fatalf("stats view point_remote_hits = %d, want %d", vb.Engine.PointRemoteHits, len(space))
	}
	if vb.Engine.PointComputed != 0 || vb.Engine.FrontendComputed != 0 ||
		vb.Engine.MidendComputed != 0 || vb.Engine.BackendComputed != 0 {
		t.Fatalf("remote-warmed node computed: %+v", vb.Engine)
	}
	if vb.Engine.DiskBackfills == 0 {
		t.Fatalf("stats view missing backfill attribution: %+v", vb.Engine)
	}
	var va StatsView
	getJSON(t, srvA.URL+"/v1/stats", &va)
	if va.Blobs.Gets == 0 || va.Blobs.Hits == 0 {
		t.Fatalf("serving node blob counters empty: %+v", va.Blobs)
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %s", url, resp.Status)
	}
	if err := jsonDecode(resp.Body, out); err != nil {
		t.Fatal(err)
	}
}

func jsonDecode(r io.Reader, out any) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("decoding %q: %w", data, err)
	}
	return nil
}
