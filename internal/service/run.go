package service

import (
	"context"
	"fmt"
	"math"
	"time"

	"sparkgo/internal/explore"
	"sparkgo/internal/obs"
)

// execute runs one job against the shared engine. It returns the result
// payload and a job-level error; cancellation is reported through the
// context (the worker inspects ctx.Err() to pick the terminal status),
// and a cancelled search still returns its partial trajectory.
func (q *Queue) execute(ctx context.Context, j *Job) (*Result, error) {
	switch j.Req.Kind {
	case KindSynth:
		return q.runSynth(ctx, j)
	case KindSweep:
		return q.runSweep(ctx, j)
	case KindSearch:
		return q.runSearch(ctx, j)
	}
	return nil, fmt.Errorf("service: unknown job kind %q", j.Req.Kind)
}

// evaluate is EvaluateContext hardened against foreign cancellation:
// the engine single-flights concurrent evaluations of one config, and
// the computing caller's context governs the shared attempt — so THIS
// job can receive a canceled point because a DIFFERENT job was
// cancelled mid-evaluation. The engine drops such entries rather than
// caching them ("waiters retry on their next lookup"); this is that
// retry. It returns a canceled point only when this job's own context
// is done.
func (q *Queue) evaluate(ctx context.Context, cfg explore.Config) explore.Point {
	for {
		pt := q.eng.EvaluateContext(ctx, cfg)
		if !explore.IsCanceled(pt) || ctx.Err() != nil {
			return pt
		}
	}
}

// synthConfig lowers a synth request to the engine's config.
func synthConfig(req *Request, sourceFP string) explore.Config {
	c := explore.Config{
		Source:     sourceFP,
		Preset:     req.preset(),
		MaxUnroll:  req.MaxUnroll,
		NoChaining: req.NoChaining,
		Passes:     req.Passes,
	}
	if sourceFP == "" {
		c.N = req.N
	}
	return c
}

func (q *Queue) runSynth(ctx context.Context, j *Job) (*Result, error) {
	q.setProgress(j, 0, 1)
	pt := q.evaluate(ctx, synthConfig(&j.Req, j.sourceFP))
	if explore.IsCanceled(pt) {
		return nil, ctx.Err()
	}
	if pt.Err != "" {
		return nil, fmt.Errorf("synthesis failed: %s", pt.Err)
	}
	q.setProgress(j, 1, 1)
	return &Result{
		SourceFingerprint: j.sourceFP,
		Points:            pointViews([]explore.Point{pt}),
	}, nil
}

// sweepSpace builds a sweep job's configuration grid: the ablation
// variants × unroll bounds over the requested generator scales, or over
// the job's named source.
func sweepSpace(req *Request, sourceFP string) []explore.Config {
	if sourceFP != "" {
		return explore.GridSources([]string{sourceFP}, explore.Variants(), req.MaxUnrolls, req.Classical)
	}
	return explore.Grid(req.Sizes, explore.Variants(), req.MaxUnrolls, req.Classical)
}

func (q *Queue) runSweep(ctx context.Context, j *Job) (*Result, error) {
	space := sweepSpace(&j.Req, j.sourceFP)
	total := len(space)
	q.setProgress(j, 0, total)

	// Sweep in worker-pool-sized batches so progress advances and
	// cancellation lands between batches even on large grids.
	batch := q.eng.EffectiveWorkers(total) * 2
	if batch < 4 {
		batch = 4
	}
	pts := make([]explore.Point, 0, total)
	for off := 0; off < total; off += batch {
		end := off + batch
		if end > total {
			end = total
		}
		got := q.eng.SweepContext(ctx, space[off:end])
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		// Our context is alive, so any canceled point in the batch was
		// poisoned by a DIFFERENT job's cancellation through the
		// engine's single flight — re-evaluate it (see evaluate) rather
		// than shipping a never-evaluated config as a failure.
		for i, pt := range got {
			if explore.IsCanceled(pt) {
				got[i] = q.evaluate(ctx, space[off+i])
			}
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		pts = append(pts, got...)
		q.setProgress(j, len(pts), total)
	}
	return &Result{
		SourceFingerprint: j.sourceFP,
		Points:            pointViews(pts),
		Frontier:          pointViews(explore.Frontier(pts)),
	}, nil
}

func (q *Queue) runSearch(ctx context.Context, j *Job) (*Result, error) {
	req := &j.Req
	st, err := explore.StrategyByName(req.Strategy)
	if err != nil {
		return nil, err
	}
	obj, err := explore.ObjectiveByName(req.Objective)
	if err != nil {
		return nil, err
	}
	sp := explore.DefaultSpace(req.N)
	if j.sourceFP != "" {
		sp.Base = explore.Config{Source: j.sourceFP, Preset: sp.Base.Preset}
	}
	q.setProgress(j, 0, req.Budget)

	budget := explore.Budget{
		MaxEvaluations: req.Budget,
		MaxDuration:    time.Duration(req.BudgetMS) * time.Millisecond,
	}
	// The observer is what makes a running search visible from outside:
	// every scored batch advances the job's progress counter (so polls
	// of /v1/jobs/{id} move mid-search instead of jumping 0→budget at
	// the end), and every improvement streams out as a trajectory event.
	ctx = explore.WithSearchObserver(ctx, &explore.SearchObserver{
		OnBatch: func(evals int) { q.setProgress(j, evals, req.Budget) },
		OnImprovement: func(s explore.Step) {
			q.publishJob(j, obs.Event{
				Type:       obs.TypeTrajectory,
				Kind:       string(j.Req.Kind),
				Evaluation: s.Evaluation,
				Score:      s.Score,
				Cycles:     s.Point.Latency,
				Config:     s.Point.Config.String(),
			})
		},
		OnRound: func(n int) {
			q.publishJob(j, obs.Event{Type: obs.TypeRound, Kind: string(j.Req.Kind), Round: n})
		},
	})
	res := st.SearchContext(ctx, q.eng, sp, obj, budget, req.Seed)
	q.setProgress(j, res.Evaluations, req.Budget)

	sv := &SearchView{
		Strategy:    res.Strategy,
		Objective:   req.Objective,
		Seed:        res.Seed,
		Evaluations: res.Evaluations,
		Revisits:    res.Revisits,
		Restarts:    res.Restarts,
		Generations: res.Generations,
		Exhausted:   res.Exhausted,
		Canceled:    res.Canceled,
		BestScore:   res.BestScore,
	}
	if !math.IsInf(res.BestScore, 1) {
		bv := pointView(res.Best)
		sv.Best = &bv
	} else {
		// +Inf does not survive JSON; an all-failed search reports it
		// as a missing best instead.
		sv.BestScore = -1
	}
	for _, s := range res.Trajectory {
		sv.Trajectory = append(sv.Trajectory, TrajectoryStep{
			Evaluation: s.Evaluation, Score: s.Score, Point: pointView(s.Point),
		})
	}
	out := &Result{SourceFingerprint: j.sourceFP, Search: sv}
	if res.Canceled {
		// The worker turns ctx.Err into the canceled status; the
		// partial trajectory still travels with the job.
		return out, ctx.Err()
	}
	if sv.Best == nil {
		return nil, fmt.Errorf("search found no successful design: every evaluated configuration failed")
	}
	return out, nil
}
