// Package service is the synthesis-as-a-service layer: a job queue and
// HTTP/JSON API that let many clients share ONE exploration engine — and
// therefore one in-memory stage cache, one disk cache, and one worker
// pool — instead of each paying a cold start in its own process.
//
// The unit of work is a Job: a synthesis, sweep, or search request with
// a lifecycle (queued → running → done/failed/canceled), a progress
// counter, and a priority. Jobs are keyed by the canonical rendering of
// their normalized request — including the *content fingerprint* of any
// inline source, not its text — so identical in-flight requests are
// single-flighted: the second submit attaches to the first job rather
// than queueing duplicate work. Identical requests submitted after the
// first completes run again, but hit the engine's point and frontend
// caches, which is exactly the amortization a shared daemon exists for.
//
// cmd/sparkd serves this package over HTTP:
//
//	POST   /v1/jobs               submit (returns the job, possibly deduped)
//	GET    /v1/jobs               list jobs
//	GET    /v1/jobs/{id}          poll one job (result inlined when terminal)
//	GET    /v1/jobs/{id}/events   live event stream (SSE): lifecycle,
//	                              progress, and search trajectory
//	DELETE /v1/jobs/{id}          cancel (mid-run cancellation cuts the job
//	                              at the next evaluation-batch boundary)
//	GET    /v1/stats              engine cache + queue + GC + blob + event
//	                              counters
//	GET    /metrics               Prometheus text exposition
//	GET    /healthz               liveness (JSON: status, uptime, build)
//
// The daemon also exports its local blob tiers (memory + disk) as a
// remote cache tier for peer engines:
//
//	GET    /v1/blobs/{kind}/{key}   fetch an artifact (X-Blob-Sha256
//	                                digest header; HEAD probes existence)
//	PUT    /v1/blobs/{kind}/{key}   store an artifact (digest verified
//	                                when the client declares one)
//	DELETE /v1/blobs/{kind}/{key}   drop an artifact
//
// Peers declare their cache schema via X-Blob-Schema; a mismatch
// answers 412 so version skew reads as a clean miss, never as data.
package service

import (
	"fmt"
	"strings"
	"time"

	"sparkgo/internal/core"
	"sparkgo/internal/explore"
	"sparkgo/internal/ir"
	"sparkgo/internal/parser"
)

// Kind selects what a job runs.
type Kind string

const (
	// KindSynth synthesizes one configuration and returns its point.
	KindSynth Kind = "synth"
	// KindSweep evaluates a configuration grid and returns the point
	// cloud plus its Pareto frontier.
	KindSweep Kind = "sweep"
	// KindSearch runs an adaptive strategy and returns the best design
	// plus the improvement trajectory.
	KindSearch Kind = "search"
)

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// Terminal reports whether a status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// Request is the submit payload. Zero fields take kind-appropriate
// defaults (Normalize); the canonical rendering of the normalized
// request is the job's single-flight key.
type Request struct {
	Kind Kind `json:"kind"`

	// Source is an inline behavioral program; SourceRef instead names
	// the content fingerprint of a source submitted earlier (every
	// response carries the fingerprint back). Both empty selects the
	// built-in ILD generator at the request's scale(s).
	Source    string `json:"source,omitempty"`
	SourceRef string `json:"source_ref,omitempty"`

	// N is the generator scale for synth and search jobs (default 8).
	N int `json:"n,omitempty"`

	// Sweep axes: generator scales (default [4,8] when no source is
	// given), unroll bounds (default [0,8]), and whether to include the
	// classical-ASIC baseline per scale.
	Sizes      []int `json:"sizes,omitempty"`
	MaxUnrolls []int `json:"max_unrolls,omitempty"`
	Classical  bool  `json:"classical,omitempty"`

	// Synth knobs: preset ("microprocessor-block" or "classical-asic"),
	// an explicit pass list, the unroll bound, and the chaining switch.
	Preset     string   `json:"preset,omitempty"`
	Passes     []string `json:"passes,omitempty"`
	MaxUnroll  int      `json:"max_unroll,omitempty"`
	NoChaining bool     `json:"no_chaining,omitempty"`

	// Search knobs (defaults: hill / weighted / budget 32 / seed 1).
	// BudgetMS is the *soft* wall-clock budget (explore.Budget
	// MaxDuration semantics: the search stops gracefully between
	// batches and still reports its best) — distinct from DeadlineMS,
	// which is a hard job timeout that fails the job.
	Strategy  string `json:"strategy,omitempty"`
	Objective string `json:"objective,omitempty"`
	Budget    int    `json:"budget,omitempty"`
	BudgetMS  int64  `json:"budget_ms,omitempty"`
	Seed      int64  `json:"seed,omitempty"`

	// DeadlineMS caps the job's wall-clock run time in milliseconds;
	// an expired job fails with the deadline error.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`

	// Priority orders the queue: higher runs first, FIFO within a
	// priority level.
	Priority int `json:"priority,omitempty"`
}

// Normalize fills kind-appropriate defaults in place and validates the
// request shape (not the source text — the queue parses that at submit).
func (r *Request) Normalize() error {
	switch r.Kind {
	case KindSynth, KindSweep, KindSearch:
	case "":
		return fmt.Errorf("service: missing job kind (want %q, %q, or %q)", KindSynth, KindSweep, KindSearch)
	default:
		return fmt.Errorf("service: unknown job kind %q (want %q, %q, or %q)", r.Kind, KindSynth, KindSweep, KindSearch)
	}
	if r.Source != "" && r.SourceRef != "" {
		return fmt.Errorf("service: source and source_ref are mutually exclusive")
	}
	hasSource := r.Source != "" || r.SourceRef != ""
	if r.N == 0 {
		r.N = 8
	}
	if r.N < 1 {
		return fmt.Errorf("service: bad scale n=%d", r.N)
	}
	switch r.Kind {
	case KindSweep:
		if len(r.Sizes) == 0 && !hasSource {
			r.Sizes = []int{4, 8}
		}
		for _, n := range r.Sizes {
			if n < 1 {
				return fmt.Errorf("service: bad sweep size %d", n)
			}
		}
		if len(r.MaxUnrolls) == 0 {
			r.MaxUnrolls = []int{0, 8}
		}
	case KindSearch:
		if r.Strategy == "" {
			r.Strategy = "hill"
		}
		if _, err := explore.StrategyByName(r.Strategy); err != nil {
			return err
		}
		if r.Objective == "" {
			r.Objective = "weighted"
		}
		if _, err := explore.ObjectiveByName(r.Objective); err != nil {
			return err
		}
		if r.Budget == 0 && r.BudgetMS == 0 && r.DeadlineMS == 0 {
			r.Budget = 32
		}
		if r.Budget < 0 {
			return fmt.Errorf("service: bad search budget %d", r.Budget)
		}
		if r.BudgetMS < 0 {
			return fmt.Errorf("service: bad search budget_ms %d", r.BudgetMS)
		}
		if r.Seed == 0 {
			r.Seed = 1
		}
	case KindSynth:
		switch r.Preset {
		case "", "microprocessor-block", "classical-asic":
		default:
			return fmt.Errorf("service: unknown preset %q", r.Preset)
		}
	}
	if r.DeadlineMS < 0 {
		return fmt.Errorf("service: bad deadline_ms %d", r.DeadlineMS)
	}
	return nil
}

// preset resolves the synth preset name (default microprocessor-block).
func (r *Request) preset() core.Preset {
	if r.Preset == "classical-asic" {
		return core.ClassicalASIC
	}
	return core.MicroprocessorBlock
}

// key renders the normalized request canonically for single-flight
// dedup. sourceFP is the resolved content fingerprint of the request's
// source ("" for the generator): two submits carrying byte-different
// text of the same program coalesce, and a source_ref submit coalesces
// with the inline submit that registered it. The synth case hashes the
// canonical Config rendering — whose pass-list join escapes ";" inside
// specs — so two distinct pass lists can never key identically.
func (r *Request) key(sourceFP string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "kind=%s src=%s", r.Kind, sourceFP)
	switch r.Kind {
	case KindSynth:
		fmt.Fprintf(&b, " cfg={%s}", synthConfig(r, sourceFP).String())
	case KindSweep:
		// Sizes drive the generator only; a source-backed sweep ignores
		// them (see sweepSpace), so keying them would split identical
		// work across jobs.
		if sourceFP == "" {
			fmt.Fprintf(&b, " sizes=%v", r.Sizes)
		}
		fmt.Fprintf(&b, " maxunrolls=%v classical=%t", r.MaxUnrolls, r.Classical)
	case KindSearch:
		// Likewise N: a source-backed search space drops the scale.
		if sourceFP == "" {
			fmt.Fprintf(&b, " n=%d", r.N)
		}
		fmt.Fprintf(&b, " strategy=%s objective=%s budget=%d budget_ms=%d seed=%d",
			r.Strategy, r.Objective, r.Budget, r.BudgetMS, r.Seed)
	}
	if r.DeadlineMS > 0 {
		fmt.Fprintf(&b, " deadline_ms=%d", r.DeadlineMS)
	}
	return ir.HashText(b.String())
}

// resolveSource parses an inline source (registering it under its
// content fingerprint) or checks a fingerprint reference, returning the
// engine source name ("" for the generator).
func resolveSource(eng *explore.Engine, r *Request) (string, error) {
	if r.Source != "" {
		prog, err := parser.Parse("inline", r.Source)
		if err != nil {
			return "", fmt.Errorf("service: parse source: %w", err)
		}
		fp := ir.Fingerprint(prog)
		eng.AddSource(fp, prog)
		return fp, nil
	}
	if r.SourceRef != "" {
		if !eng.HasSource(r.SourceRef) {
			return "", fmt.Errorf("service: unknown source_ref %q (submit the source inline first)", r.SourceRef)
		}
		return r.SourceRef, nil
	}
	return "", nil
}

// PointView is the JSON rendering of one evaluated configuration.
type PointView struct {
	Config   string  `json:"config"`
	Cycles   int     `json:"cycles"`
	Latency  int     `json:"latency"`
	CritPath float64 `json:"crit_path"`
	Area     float64 `json:"area"`
	Muxes    int     `json:"muxes"`
	FUs      int     `json:"fus"`
	Rounds   int     `json:"rounds"`
	Err      string  `json:"err,omitempty"`
}

func pointView(p explore.Point) PointView {
	return PointView{
		Config: p.Config.String(), Cycles: p.Cycles, Latency: p.Latency,
		CritPath: p.CritPath, Area: p.Area, Muxes: p.Muxes, FUs: p.FUs,
		Rounds: p.Rounds, Err: p.Err,
	}
}

func pointViews(pts []explore.Point) []PointView {
	out := make([]PointView, len(pts))
	for i, p := range pts {
		out[i] = pointView(p)
	}
	return out
}

// TrajectoryStep is one strict improvement in a search result.
type TrajectoryStep struct {
	Evaluation int       `json:"evaluation"`
	Score      float64   `json:"score"`
	Point      PointView `json:"point"`
}

// SearchView is the JSON rendering of a finished (or cancelled-partial)
// adaptive search.
type SearchView struct {
	Strategy    string           `json:"strategy"`
	Objective   string           `json:"objective"`
	Seed        int64            `json:"seed"`
	Evaluations int              `json:"evaluations"`
	Revisits    int              `json:"revisits"`
	Restarts    int              `json:"restarts,omitempty"`
	Generations int              `json:"generations,omitempty"`
	Exhausted   bool             `json:"exhausted"`
	Canceled    bool             `json:"canceled,omitempty"`
	BestScore   float64          `json:"best_score"`
	Best        *PointView       `json:"best,omitempty"`
	Trajectory  []TrajectoryStep `json:"trajectory"`
}

// Result is a job's payload: points for synth, points + frontier for
// sweeps, the search summary for searches. SourceFingerprint echoes the
// content identity of the job's source so later submits can reference
// it (source_ref) instead of re-sending text.
type Result struct {
	SourceFingerprint string      `json:"source_fingerprint,omitempty"`
	Points            []PointView `json:"points,omitempty"`
	Frontier          []PointView `json:"frontier,omitempty"`
	Search            *SearchView `json:"search,omitempty"`
}

// Progress is a job's completed/total evaluation counter. Total is 0
// when the job's size is unknown up front (searches).
type Progress struct {
	Done  int `json:"done"`
	Total int `json:"total,omitempty"`
}

// JobView is the JSON rendering of a job's state. Result is populated
// only once the job is terminal.
type JobView struct {
	ID        string     `json:"id"`
	Key       string     `json:"key"`
	Kind      Kind       `json:"kind"`
	Status    Status     `json:"status"`
	Priority  int        `json:"priority,omitempty"`
	Deduped   bool       `json:"deduped,omitempty"`
	Coalesced int        `json:"coalesced,omitempty"`
	Progress  *Progress  `json:"progress,omitempty"`
	Created   time.Time  `json:"created"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	Error     string     `json:"error,omitempty"`
	Result    *Result    `json:"result,omitempty"`
}

// EngineStatsView is the snake_case mirror of explore.Stats for the
// stats endpoint: every layer of the staged flow — point, frontend,
// midend, backend — split into memory hits / disk hits / remote hits /
// computed, plus the blob-tier health counters (backfills, absorbed
// errors, disk header misses and corruptions).
type EngineStatsView struct {
	PointMemHits       int64 `json:"point_mem_hits"`
	PointDiskHits      int64 `json:"point_disk_hits"`
	PointRemoteHits    int64 `json:"point_remote_hits"`
	PointComputed      int64 `json:"point_computed"`
	FrontendMemHits    int64 `json:"frontend_mem_hits"`
	FrontendDiskHits   int64 `json:"frontend_disk_hits"`
	FrontendRemoteHits int64 `json:"frontend_remote_hits"`
	FrontendComputed   int64 `json:"frontend_computed"`
	MidendMemHits      int64 `json:"midend_mem_hits"`
	MidendDiskHits     int64 `json:"midend_disk_hits"`
	MidendRemoteHits   int64 `json:"midend_remote_hits"`
	MidendComputed     int64 `json:"midend_computed"`
	BackendMemHits     int64 `json:"backend_mem_hits"`
	BackendDiskHits    int64 `json:"backend_disk_hits"`
	BackendRemoteHits  int64 `json:"backend_remote_hits"`
	BackendComputed    int64 `json:"backend_computed"`
	MemBackfills       int64 `json:"mem_backfills"`
	DiskBackfills      int64 `json:"disk_backfills"`
	DiskErrors         int64 `json:"disk_errors"`
	RemoteErrors       int64 `json:"remote_errors"`
	DiskHeaderMisses   int64 `json:"disk_header_misses"`
	DiskCorruptions    int64 `json:"disk_corruptions"`
}

// QueueStatsView is the queue's cumulative job accounting.
type QueueStatsView struct {
	Submitted int64 `json:"submitted"`
	Coalesced int64 `json:"coalesced"`
	Queued    int   `json:"queued"`
	Running   int   `json:"running"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
}

// KindGCView is the cumulative eviction accounting for one artifact
// kind (frontend, midend, backend, point), so a long-lived deployment
// can see which cache layer its byte budget is squeezing.
type KindGCView struct {
	Kind         string `json:"kind"`
	RemovedFiles int64  `json:"removed_files"`
	RemovedBytes int64  `json:"removed_bytes"`
}

// GCStatsView is the cumulative cache-GC accounting of a daemon that
// runs with a byte budget.
type GCStatsView struct {
	Runs         int64 `json:"runs"`
	RemovedFiles int64 `json:"removed_files"`
	RemovedBytes int64 `json:"removed_bytes"`
	Errors       int64 `json:"errors"`
	// PerKind breaks the removal counters down by artifact kind, sorted
	// by kind name; only kinds that ever lost an artifact appear.
	PerKind []KindGCView `json:"per_kind,omitempty"`
}

// BlobStatsView counts traffic on the daemon's /v1/blobs API — the
// server side of peers' remote tiers, separate from the engine's own
// cache counters.
type BlobStatsView struct {
	Gets    int64 `json:"gets"`
	Hits    int64 `json:"hits"`
	Puts    int64 `json:"puts"`
	Deletes int64 `json:"deletes"`
	Errors  int64 `json:"errors"`
}

// EventStatsView counts observability traffic: events through the
// engine's bus and SSE stream subscriptions, including subscribers
// dropped for falling behind (the publish side never blocks on a slow
// reader).
type EventStatsView struct {
	BusPublished       int64 `json:"bus_published"`
	BusDropped         int64 `json:"bus_dropped"`
	BusSubscribers     int   `json:"bus_subscribers"`
	StreamsOpened      int64 `json:"streams_opened"`
	StreamsActive      int64 `json:"streams_active"`
	SubscribersDropped int64 `json:"subscribers_dropped"`
}

// StatsView is the /v1/stats payload: where lookups were served from
// (the shared caches being the product), the blob-API counters, the
// queue counters, and the GC counters, stamped with the cache schema so
// archived stats are comparable across stage-version bumps.
type StatsView struct {
	CacheSchema   string                `json:"cache_schema"`
	StageVersions explore.StageVersions `json:"stage_versions"`
	Engine        EngineStatsView       `json:"engine"`
	Blobs         BlobStatsView         `json:"blobs"`
	Queue         QueueStatsView        `json:"queue"`
	GC            GCStatsView           `json:"gc"`
	Events        EventStatsView        `json:"events"`
}

func engineStatsView(s explore.Stats) EngineStatsView {
	return EngineStatsView{
		PointMemHits:       s.PointMemHits,
		PointDiskHits:      s.PointDiskHits,
		PointRemoteHits:    s.PointRemoteHits,
		PointComputed:      s.PointComputed,
		FrontendMemHits:    s.FrontendMemHits,
		FrontendDiskHits:   s.FrontendDiskHits,
		FrontendRemoteHits: s.FrontendRemoteHits,
		FrontendComputed:   s.FrontendComputed,
		MidendMemHits:      s.MidendMemHits,
		MidendDiskHits:     s.MidendDiskHits,
		MidendRemoteHits:   s.MidendRemoteHits,
		MidendComputed:     s.MidendComputed,
		BackendMemHits:     s.BackendMemHits,
		BackendDiskHits:    s.BackendDiskHits,
		BackendRemoteHits:  s.BackendRemoteHits,
		BackendComputed:    s.BackendComputed,
		MemBackfills:       s.MemBackfills,
		DiskBackfills:      s.DiskBackfills,
		DiskErrors:         s.DiskErrors,
		RemoteErrors:       s.RemoteErrors,
		DiskHeaderMisses:   s.DiskHeaderMisses,
		DiskCorruptions:    s.DiskCorruptions,
	}
}
