package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sparkgo/internal/explore"
	"sparkgo/internal/ild"
	"sparkgo/internal/ir"
	"sparkgo/internal/obs"
)

// testServer boots the full HTTP stack over a fresh queue + engine. The
// engine's generator sleeps for scales above blockerScale, giving tests
// a way to pin workers on deliberately slow jobs.
func testServer(t *testing.T, queueWorkers int) (*httptest.Server, *Queue) {
	t.Helper()
	eng := &explore.Engine{
		Workers:   2,
		SimTrials: 1,
		CacheDir:  t.TempDir(),
		// The bus is attached in every service test so the whole event
		// path — stage spans, job lifecycle, metrics folding — runs
		// under -race alongside the queue.
		Obs: obs.NewBus(obs.NewMetrics(obs.NewRegistry())),
		Source: func(n int) *ir.Program {
			if n > blockerScale {
				time.Sleep(500 * time.Millisecond)
				n = 4
			}
			return ild.Program(n)
		},
	}
	q := NewQueue(eng, queueWorkers, 0)
	srv := httptest.NewServer(NewServer(q))
	t.Cleanup(srv.Close)
	return srv, q
}

// blockerScale marks generator scales that sleep before producing a
// (small) program: a submit at scale blockerScale+i reliably occupies a
// queue worker long enough for the test to race other submits past it.
const blockerScale = 100

func httpJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func submit(t *testing.T, base string, req Request) JobView {
	t.Helper()
	v, err := trySubmit(base, req)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// trySubmit is submit without the testing.T, safe off the test
// goroutine.
func trySubmit(base string, req Request) (JobView, error) {
	var v JobView
	data, err := json.Marshal(req)
	if err != nil {
		return v, err
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(data))
	if err != nil {
		return v, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return v, fmt.Errorf("submit %+v: HTTP %d", req, resp.StatusCode)
	}
	return v, json.NewDecoder(resp.Body).Decode(&v)
}

func poll(t *testing.T, base, id string) JobView {
	t.Helper()
	var v JobView
	if code := httpJSON(t, "GET", base+"/v1/jobs/"+id, nil, &v); code != http.StatusOK {
		t.Fatalf("poll %s: HTTP %d", id, code)
	}
	return v
}

func waitTerminal(t *testing.T, base, id string, timeout time.Duration) JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v := poll(t, base, id)
		if v.Status.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not terminal after %v (status %s)", id, timeout, v.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestConcurrentJobsOverSharedEngine is the service acceptance test: ≥ 8
// overlapping jobs from concurrent clients over ONE engine, including
// two identical submits (single-flighted), two byte-different renderings
// of the same source program (coalesced by content fingerprint), and one
// long search cancelled mid-run. Afterwards /v1/stats must report the
// dedup and the cross-job frontend cache hits. Run under -race.
func TestConcurrentJobsOverSharedEngine(t *testing.T) {
	srv, _ := testServer(t, 4)
	base := srv.URL

	// Two byte-different renderings of one program: same fingerprint.
	srcA := "uint8 a;\nuint8 b;\nuint8 out;\nvoid main() {\n  uint8 s;\n  s = a + b;\n  if (s < a) { s = 255; }\n  out = s;\n}\n"
	srcB := "uint8 a; uint8 b; uint8 out;\nvoid main() { uint8 s; s = a + b; if (s < a) { s = 255; } out = s; }"

	// The cancel target: a hill climb with a budget far beyond what the
	// test waits for, at a scale slow enough to be caught mid-run.
	cancelReq := Request{Kind: KindSearch, N: 16, Strategy: "hill", Budget: 100000, Seed: 7}

	// Pin every worker on a slow blocker job first: the dedup pairs
	// below then sit queued — still in flight — when their duplicates
	// arrive, making the single-flight assertion deterministic instead
	// of a race against millisecond-scale synthesis.
	var blockers []JobView
	for i := 0; i < 4; i++ {
		blockers = append(blockers, submit(t, base, Request{Kind: KindSynth, N: blockerScale + 1 + i}))
	}

	sweepReq := Request{Kind: KindSweep, Sizes: []int{4}, MaxUnrolls: []int{0, 8}, Classical: true}
	sweepJob := submit(t, base, sweepReq)
	sweepDup := submit(t, base, sweepReq) // identical: must single-flight
	if sweepJob.ID != sweepDup.ID || !sweepDup.Deduped {
		t.Errorf("identical sweep submits: got jobs %s and %s (deduped=%t), want one single-flighted job",
			sweepJob.ID, sweepDup.ID, sweepDup.Deduped)
	}
	srcJob := submit(t, base, Request{Kind: KindSweep, Source: srcA, Classical: true})
	srcDup := submit(t, base, Request{Kind: KindSweep, Source: srcB, Classical: true}) // same program: must single-flight
	if srcJob.ID != srcDup.ID || !srcDup.Deduped {
		t.Errorf("same-fingerprint source submits: got jobs %s and %s (deduped=%t), want one single-flighted job",
			srcJob.ID, srcDup.ID, srcDup.Deduped)
	}

	// The rest of the wave overlaps the in-flight pairs: concurrent
	// submits from concurrent clients. (Failures travel back to the test
	// goroutine; t.Fatalf is not goroutine-safe.)
	wave := []Request{
		{Kind: KindSynth, N: 4},
		{Kind: KindSynth, N: 8},
		{Kind: KindSearch, N: 4, Strategy: "hill", Budget: 6, Seed: 1},
		{Kind: KindSearch, N: 4, Strategy: "genetic", Budget: 6, Seed: 2},
		cancelReq,
	}
	views := make([]JobView, len(wave))
	errs := make(chan error, len(wave))
	for i := range wave {
		go func(i int) {
			v, err := trySubmit(base, wave[i])
			views[i] = v
			errs <- err
		}(i)
	}
	for range wave {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	cancelIdx := len(wave) - 1

	// Cancel the long search once it is actually running (cancelling a
	// queued job would not exercise mid-run cancellation).
	cancelID := views[cancelIdx].ID
	waitRunning := time.Now().Add(60 * time.Second)
	for {
		v := poll(t, base, cancelID)
		if v.Status == StatusRunning {
			break
		}
		if v.Status.Terminal() {
			t.Fatalf("cancel target %s finished (%s) before it could be cancelled", cancelID, v.Status)
		}
		if time.Now().After(waitRunning) {
			t.Fatalf("cancel target %s never started running", cancelID)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code := httpJSON(t, "DELETE", base+"/v1/jobs/"+cancelID, nil, nil); code != http.StatusOK {
		t.Fatalf("cancel %s: HTTP %d", cancelID, code)
	}

	// Everything must reach a terminal state — including the cancelled
	// search, which would otherwise run its 100000-evaluation budget for
	// far longer than this timeout: reaching it at all IS the
	// within-one-batch cancellation working.
	finished := []JobView{
		waitTerminal(t, base, sweepJob.ID, 120*time.Second),
		waitTerminal(t, base, srcJob.ID, 120*time.Second),
	}
	for _, b := range blockers {
		finished = append(finished, waitTerminal(t, base, b.ID, 120*time.Second))
	}
	for i := range wave {
		v := waitTerminal(t, base, views[i].ID, 120*time.Second)
		if i == cancelIdx {
			if v.Status != StatusCanceled {
				t.Errorf("cancel target %s: status %s, want %s", v.ID, v.Status, StatusCanceled)
			}
			if v.Result != nil && v.Result.Search != nil {
				if !v.Result.Search.Canceled {
					t.Errorf("cancelled search result not flagged canceled")
				}
				if v.Result.Search.Evaluations >= cancelReq.Budget {
					t.Errorf("cancelled search ran its whole %d-evaluation budget", cancelReq.Budget)
				}
			}
			continue
		}
		finished = append(finished, v)
	}
	for _, v := range finished {
		if v.Status != StatusDone {
			t.Errorf("job %s (%s): status %s (%s), want done", v.ID, v.Kind, v.Status, v.Error)
		}
		if v.Status == StatusDone && v.Result == nil {
			t.Errorf("job %s done without result", v.ID)
		}
	}
	if v := finished[0]; v.Status == StatusDone && v.Result != nil {
		if len(v.Result.Points) == 0 || len(v.Result.Frontier) == 0 {
			t.Errorf("sweep job %s: %d points, %d frontier (want both non-empty)",
				v.ID, len(v.Result.Points), len(v.Result.Frontier))
		}
		if v.Coalesced != 1 {
			t.Errorf("sweep job coalesced %d submits, want 1", v.Coalesced)
		}
	}

	// The second identical submit of a *completed* job is not coalesced
	// — it re-runs — but must be served by the shared caches: /v1/stats
	// afterwards shows frontend (and point) hits for it.
	var before StatsView
	httpJSON(t, "GET", base+"/v1/stats", nil, &before)
	rerun := submit(t, base, Request{Kind: KindSynth, N: 4})
	if rerun.ID == views[0].ID || rerun.Deduped {
		t.Fatalf("re-submit after completion unexpectedly coalesced onto finished job %s", rerun.ID)
	}
	if v := waitTerminal(t, base, rerun.ID, 60*time.Second); v.Status != StatusDone {
		t.Fatalf("re-submitted job %s: status %s (%s)", v.ID, v.Status, v.Error)
	}
	var stats StatsView
	httpJSON(t, "GET", base+"/v1/stats", nil, &stats)
	if hits := stats.Engine.PointMemHits - before.Engine.PointMemHits; hits < 1 {
		t.Errorf("second identical submit: point mem hits %d, want >= 1", hits)
	}
	if stats.Engine.FrontendMemHits == 0 {
		t.Errorf("no cross-job frontend cache hits after %d submits over one engine", stats.Queue.Submitted)
	}
	if stats.Queue.Coalesced < 2 {
		t.Errorf("queue coalesced %d submits, want >= 2", stats.Queue.Coalesced)
	}
	if stats.Queue.Canceled != 1 {
		t.Errorf("queue canceled count %d, want 1", stats.Queue.Canceled)
	}
	if stats.CacheSchema != explore.DiskSchema() {
		t.Errorf("stats cache schema %q, want %q", stats.CacheSchema, explore.DiskSchema())
	}
	if stats.StageVersions != explore.Versions() {
		t.Errorf("stats stage versions %+v, want %+v", stats.StageVersions, explore.Versions())
	}
}

// TestSourceRefRoundTrip submits a source inline, then re-references it
// by fingerprint: the ref submit must resolve to the same engine source
// and coalesce with an identical in-flight inline submit.
func TestSourceRefRoundTrip(t *testing.T) {
	srv, _ := testServer(t, 2)
	base := srv.URL
	src := "uint8 x;\nuint8 y;\nuint8 out;\nvoid main() {\n  uint8 d;\n  if (x > y) { d = x - y; } else { d = y - x; }\n  out = d;\n}\n"

	first := submit(t, base, Request{Kind: KindSynth, Source: src})
	v := waitTerminal(t, base, first.ID, 60*time.Second)
	if v.Status != StatusDone {
		t.Fatalf("inline job: %s (%s)", v.Status, v.Error)
	}
	fp := v.Result.SourceFingerprint
	if fp == "" {
		t.Fatalf("done job carries no source fingerprint")
	}

	ref := submit(t, base, Request{Kind: KindSynth, SourceRef: fp})
	rv := waitTerminal(t, base, ref.ID, 60*time.Second)
	if rv.Status != StatusDone {
		t.Fatalf("ref job: %s (%s)", rv.Status, rv.Error)
	}
	if rv.Result.SourceFingerprint != fp {
		t.Errorf("ref job fingerprint %q, want %q", rv.Result.SourceFingerprint, fp)
	}
	// Inline and ref jobs are the same request once resolved: same key.
	if ref.Key != first.Key {
		t.Errorf("inline key %q != ref key %q: dedup would miss", first.Key, ref.Key)
	}

	var missing struct {
		Error string `json:"error"`
	}
	code := httpJSON(t, "POST", base+"/v1/jobs", Request{Kind: KindSynth, SourceRef: "nope"}, &missing)
	if code != http.StatusBadRequest || !strings.Contains(missing.Error, "source_ref") {
		t.Errorf("unknown source_ref: HTTP %d %q, want 400 mentioning source_ref", code, missing.Error)
	}
}

// TestSubmitValidation exercises the request codec's failure paths.
func TestSubmitValidation(t *testing.T) {
	srv, _ := testServer(t, 1)
	base := srv.URL
	bad := []Request{
		{},                                      // missing kind
		{Kind: "mystery"},                       // unknown kind
		{Kind: KindSynth, N: -1},                // bad scale
		{Kind: KindSearch, Strategy: "tabu"},    // unknown strategy
		{Kind: KindSearch, Objective: "beauty"}, // unknown objective
		{Kind: KindSweep, Sizes: []int{0}},      // bad sweep size
		{Kind: KindSynth, Source: "uint8 a; void main("},                     // parse error
		{Kind: KindSynth, Source: "uint8 a; void main() {}", SourceRef: "x"}, // both
	}
	for _, req := range bad {
		if code := httpJSON(t, "POST", base+"/v1/jobs", req, nil); code != http.StatusBadRequest {
			t.Errorf("submit %+v: HTTP %d, want 400", req, code)
		}
	}
	if code := httpJSON(t, "GET", base+"/v1/jobs/j999", nil, nil); code != http.StatusNotFound {
		t.Errorf("get unknown job: HTTP %d, want 404", code)
	}
	if code := httpJSON(t, "DELETE", base+"/v1/jobs/j999", nil, nil); code != http.StatusNotFound {
		t.Errorf("cancel unknown job: HTTP %d, want 404", code)
	}
	var health struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		GoVersion     string  `json:"go_version"`
	}
	if code := httpJSON(t, "GET", base+"/healthz", nil, &health); code != http.StatusOK {
		t.Errorf("healthz: HTTP %d", code)
	}
	if health.Status != "ok" || health.UptimeSeconds < 0 || health.GoVersion == "" {
		t.Errorf("healthz payload: %+v", health)
	}
}
