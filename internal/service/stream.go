package service

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sparkgo/internal/obs"
)

const (
	// streamRingSize bounds the per-job backlog replayed to a
	// subscriber connecting mid-run; older events fall off the front.
	streamRingSize = 256
	// streamSubBuffer is each SSE subscriber's channel buffer. A
	// consumer that falls this far behind is dropped — disconnected,
	// counted — rather than ever blocking the engine.
	streamSubBuffer = 64
	// sseHeartbeat keeps quiet streams alive through proxies.
	sseHeartbeat = 15 * time.Second
)

// streamCounters is the queue-wide SSE accounting surfaced in
// /v1/stats.
type streamCounters struct {
	opened  atomic.Int64 // subscriptions served, terminal replays included
	active  atomic.Int64 // currently subscribed
	dropped atomic.Int64 // subscribers dropped for falling behind
}

// streamSub is one live SSE subscriber.
type streamSub struct {
	ch      chan obs.Event
	dropped atomic.Bool // set before ch is closed on a slow-consumer drop
}

// jobStream is one job's event log: a bounded ring of everything
// published so far (the backlog a late subscriber replays) plus the
// live subscriber set. Publishing never blocks: a subscriber whose
// buffer is full is dropped on the spot. The stream closes when the
// job reaches a terminal status, ending every subscriber's stream
// after the final event.
type jobStream struct {
	counters *streamCounters

	mu     sync.Mutex
	seq    uint64
	ring   []obs.Event // circular, capacity streamRingSize
	start  int
	count  int
	subs   map[*streamSub]struct{}
	closed bool
}

func newJobStream(c *streamCounters) *jobStream {
	return &jobStream{counters: c, subs: map[*streamSub]struct{}{}}
}

// publish stamps the event with the stream's own sequence (SSE event
// ids are per job, not bus-global), appends it to the ring, and fans
// it out without blocking.
func (s *jobStream) publish(ev obs.Event) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.seq++
	ev.Seq = s.seq
	if s.ring == nil {
		s.ring = make([]obs.Event, streamRingSize)
	}
	s.ring[(s.start+s.count)%streamRingSize] = ev
	if s.count < streamRingSize {
		s.count++
	} else {
		s.start = (s.start + 1) % streamRingSize
	}
	for sub := range s.subs {
		select {
		case sub.ch <- ev:
		default:
			delete(s.subs, sub)
			sub.dropped.Store(true)
			close(sub.ch)
			s.counters.dropped.Add(1)
			s.counters.active.Add(-1)
		}
	}
}

// close ends the stream: every subscriber's channel is closed (after
// whatever is already buffered drains) and later subscribers get the
// backlog plus an immediate end-of-stream.
func (s *jobStream) close() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for sub := range s.subs {
		delete(s.subs, sub)
		close(sub.ch)
		s.counters.active.Add(-1)
	}
}

// subscribe atomically snapshots the backlog and registers a live
// subscriber, so no event is missed or duplicated between the two. On
// a closed stream it returns the backlog and a nil subscriber.
func (s *jobStream) subscribe() (backlog []obs.Event, sub *streamSub, closed bool) {
	if s == nil {
		return nil, nil, true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	backlog = make([]obs.Event, s.count)
	for i := 0; i < s.count; i++ {
		backlog[i] = s.ring[(s.start+i)%streamRingSize]
	}
	s.counters.opened.Add(1)
	if s.closed {
		return backlog, nil, true
	}
	sub = &streamSub{ch: make(chan obs.Event, streamSubBuffer)}
	s.subs[sub] = struct{}{}
	s.counters.active.Add(1)
	return backlog, sub, false
}

// unsubscribe removes a live subscriber; idempotent with the drop and
// close paths, which may have removed it already.
func (s *jobStream) unsubscribe(sub *streamSub) {
	if s == nil || sub == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.subs[sub]; ok {
		delete(s.subs, sub)
		close(sub.ch)
		s.counters.active.Add(-1)
	}
}

// publishJob routes one event to both planes: the engine-wide bus
// (metrics, global subscribers) and the job's own SSE stream. Each
// plane stamps its own sequence number on its copy.
func (q *Queue) publishJob(j *Job, ev obs.Event) {
	ev.Job = j.ID
	if ev.TimeNs == 0 {
		ev.TimeNs = time.Now().UnixNano()
	}
	q.eng.Obs.Publish(ev)
	j.stream.publish(ev)
}

// writeSSE renders one event as a Server-Sent Events frame: the
// per-job sequence as the id, the event type as the SSE event name,
// and the JSON-encoded event as the data line.
func writeSSE(w io.Writer, ev obs.Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	if _, err := io.WriteString(w, "id: "+strconv.FormatUint(ev.Seq, 10)+"\nevent: "+ev.Type+"\ndata: "); err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	_, err = io.WriteString(w, "\n\n")
	return err
}

// jobEvents handles GET /v1/jobs/{id}/events: the job's live event
// stream as SSE. A subscriber connecting mid-run receives the
// buffered backlog first, then live events; the stream ends after the
// terminal job event (completion or cancel). A consumer that cannot
// keep up is disconnected with a final "dropped" event and counted in
// /v1/stats — the engine never waits for a reader.
func (s *Server) jobEvents(w http.ResponseWriter, r *http.Request) {
	job, err := s.queue.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errStreamingUnsupported)
		return
	}
	backlog, sub, closed := job.stream.subscribe()
	if sub != nil {
		defer job.stream.unsubscribe(sub)
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	for _, ev := range backlog {
		if writeSSE(w, ev) != nil {
			return
		}
	}
	fl.Flush()
	if closed {
		return
	}
	heartbeat := time.NewTicker(sseHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case ev, ok := <-sub.ch:
			if !ok {
				if sub.dropped.Load() {
					_, _ = io.WriteString(w, "event: dropped\ndata: {\"reason\":\"slow consumer\"}\n\n")
					fl.Flush()
				}
				return
			}
			if writeSSE(w, ev) != nil {
				return
			}
			fl.Flush()
		case <-heartbeat.C:
			if _, err := io.WriteString(w, ": ping\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
