package service

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"sparkgo/internal/obs"
)

// sseFrame is one parsed Server-Sent Events frame.
type sseFrame struct {
	name string
	ev   obs.Event
}

// readSSE consumes an event stream until the server closes it (the
// terminal-status close) and returns every parsed frame. Heartbeat
// comments are skipped.
func readSSE(t *testing.T, body *bufio.Scanner) []sseFrame {
	t.Helper()
	var out []sseFrame
	var name, data string
	for body.Scan() {
		line := body.Text()
		switch {
		case line == "":
			if name != "" || data != "" {
				f := sseFrame{name: name}
				if data != "" {
					_ = json.Unmarshal([]byte(data), &f.ev)
				}
				out = append(out, f)
			}
			name, data = "", ""
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case strings.HasPrefix(line, ":"):
			// heartbeat comment
		}
	}
	if err := body.Err(); err != nil {
		t.Fatalf("reading SSE stream: %v", err)
	}
	return out
}

// openSSE connects to a job's event stream and fails the test on a
// non-200 answer.
func openSSE(t *testing.T, base, id string) *http.Response {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatalf("open SSE: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("open SSE: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("SSE content type %q", ct)
	}
	return resp
}

// TestSSEBacklogAndLiveTrajectory subscribes to a search job while it
// is still queued behind a blocker: the backlog (the submitted event)
// replays on connect, then the live run streams through the same
// connection — start, per-batch progress, trajectory improvements —
// and the stream closes by itself after the terminal event. This pins
// the satellite fix too: search progress advances mid-run instead of
// jumping 0→budget at the end.
func TestSSEBacklogAndLiveTrajectory(t *testing.T) {
	srv, _ := testServer(t, 1)
	base := srv.URL

	blocker := submit(t, base, Request{Kind: KindSynth, N: blockerScale + 1})
	search := submit(t, base, Request{Kind: KindSearch, N: 4, Budget: 16, Seed: 3})

	resp := openSSE(t, base, search.ID)
	defer resp.Body.Close()
	frames := readSSE(t, bufio.NewScanner(resp.Body))

	if len(frames) < 4 {
		t.Fatalf("got %d frames, want at least submitted/started/progress/terminal", len(frames))
	}
	var lastSeq uint64
	for _, f := range frames {
		if f.ev.Seq <= lastSeq {
			t.Fatalf("event ids not strictly increasing: %d after %d", f.ev.Seq, lastSeq)
		}
		lastSeq = f.ev.Seq
		if f.ev.Job != search.ID {
			t.Errorf("event for job %q on %s's stream", f.ev.Job, search.ID)
		}
	}
	if frames[0].name != obs.TypeJob || frames[0].ev.Op != "submitted" {
		t.Errorf("first frame = %s/%s, want the replayed submitted event", frames[0].name, frames[0].ev.Op)
	}
	ops := map[string]int{}
	progress, trajectory, maxDone := 0, 0, 0
	for _, f := range frames {
		switch f.name {
		case obs.TypeJob:
			ops[f.ev.Op]++
		case obs.TypeProgress:
			progress++
			if f.ev.Done > maxDone {
				maxDone = f.ev.Done
			}
		case obs.TypeTrajectory:
			trajectory++
			if f.ev.Config == "" || f.ev.Evaluation == 0 {
				t.Errorf("trajectory frame missing config/evaluation: %+v", f.ev)
			}
		}
	}
	if ops["started"] != 1 {
		t.Errorf("started events = %d, want 1 (ops %v)", ops["started"], ops)
	}
	if ops["done"] != 1 {
		t.Errorf("done events = %d, want 1 (ops %v)", ops["done"], ops)
	}
	if progress < 2 || maxDone == 0 {
		t.Errorf("progress frames = %d (max done %d): search ran invisibly", progress, maxDone)
	}
	if trajectory == 0 {
		t.Error("no trajectory frames: search improvements did not stream")
	}
	last := frames[len(frames)-1]
	if last.name != obs.TypeJob || last.ev.Op != "done" {
		t.Errorf("stream ended on %s/%s, want the terminal done event", last.name, last.ev.Op)
	}

	if v := waitTerminal(t, base, blocker.ID, 60*time.Second); v.Status != StatusDone {
		t.Fatalf("blocker finished %s", v.Status)
	}
}

// TestSSECloseOnCancel: cancelling a queued job ends its event stream
// with the canceled event.
func TestSSECloseOnCancel(t *testing.T) {
	srv, _ := testServer(t, 1)
	base := srv.URL

	blocker := submit(t, base, Request{Kind: KindSynth, N: blockerScale + 1})
	victim := submit(t, base, Request{Kind: KindSynth, N: 5})

	resp := openSSE(t, base, victim.ID)
	defer resp.Body.Close()
	if code := httpJSON(t, "DELETE", base+"/v1/jobs/"+victim.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("cancel: HTTP %d", code)
	}
	frames := readSSE(t, bufio.NewScanner(resp.Body))
	if len(frames) == 0 {
		t.Fatal("empty stream")
	}
	last := frames[len(frames)-1]
	if last.name != obs.TypeJob || last.ev.Op != "canceled" {
		t.Errorf("stream ended on %s/%s, want canceled", last.name, last.ev.Op)
	}

	waitTerminal(t, base, blocker.ID, 60*time.Second)
}

// TestSSEAfterTerminalReplaysBacklog: a subscriber connecting after the
// job finished still gets the full event history, then an immediate
// end of stream.
func TestSSEAfterTerminalReplaysBacklog(t *testing.T) {
	srv, _ := testServer(t, 1)
	base := srv.URL

	job := submit(t, base, Request{Kind: KindSynth, N: 4})
	waitTerminal(t, base, job.ID, 60*time.Second)

	resp := openSSE(t, base, job.ID)
	defer resp.Body.Close()
	frames := readSSE(t, bufio.NewScanner(resp.Body))
	if len(frames) < 3 {
		t.Fatalf("replay returned %d frames", len(frames))
	}
	if first := frames[0]; first.ev.Op != "submitted" {
		t.Errorf("replay starts at %s/%s", first.name, first.ev.Op)
	}
	if last := frames[len(frames)-1]; last.ev.Op != "done" {
		t.Errorf("replay ends at %s/%s", last.name, last.ev.Op)
	}
}

// TestSlowSubscriberDropped: a subscriber that stops reading is cut
// loose — its channel closes, the publisher never blocks — and the
// drop is counted in /v1/stats.
func TestSlowSubscriberDropped(t *testing.T) {
	srv, q := testServer(t, 1)
	base := srv.URL

	blocker := submit(t, base, Request{Kind: KindSynth, N: blockerScale + 1})
	j, err := q.Get(blocker.ID)
	if err != nil {
		t.Fatal(err)
	}
	_, sub, closed := j.stream.subscribe()
	if closed || sub == nil {
		t.Fatal("stream closed before the job finished")
	}
	// Publish past the subscriber buffer without draining; the publish
	// loop must return (never block) and drop the subscriber.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < streamSubBuffer+16; i++ {
			q.publishJob(j, obs.Event{Type: obs.TypeProgress, Done: i + 1, Total: streamSubBuffer + 16})
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("publish blocked on a slow subscriber")
	}
	drained := 0
	for range sub.ch {
		drained++
	}
	if !sub.dropped.Load() {
		t.Error("slow subscriber was not marked dropped")
	}
	if drained == 0 || drained > streamSubBuffer {
		t.Errorf("drained %d buffered events, want 1..%d", drained, streamSubBuffer)
	}

	var sv StatsView
	if code := httpJSON(t, "GET", base+"/v1/stats", nil, &sv); code != http.StatusOK {
		t.Fatalf("stats: HTTP %d", code)
	}
	if sv.Events.SubscribersDropped < 1 {
		t.Errorf("stats subscribers_dropped = %d, want >= 1", sv.Events.SubscribersDropped)
	}
	if sv.Events.StreamsOpened < 1 || sv.Events.BusPublished == 0 {
		t.Errorf("event stats not accounted: %+v", sv.Events)
	}

	waitTerminal(t, base, blocker.ID, 60*time.Second)
}

// TestMetricsEndpoint: after one real job, /metrics serves the
// Prometheus exposition with per-stage latency histograms, tier
// counters, and job lifecycle counters.
func TestMetricsEndpoint(t *testing.T) {
	srv, _ := testServer(t, 1)
	base := srv.URL

	job := submit(t, base, Request{Kind: KindSynth, N: 4})
	if v := waitTerminal(t, base, job.ID, 60*time.Second); v.Status != StatusDone {
		t.Fatalf("job finished %s", v.Status)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteString("\n")
	}
	body := sb.String()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", resp.StatusCode)
	}
	for _, want := range []string{
		"# TYPE " + obs.MetricStageLatency + " histogram",
		obs.MetricStageLatency + `_count{disposition="computed",stage="frontend"}`,
		obs.MetricStageLatency + `_bucket{disposition="computed",stage="point",le="+Inf"}`,
		"# TYPE " + obs.MetricTierOps + " counter",
		obs.MetricTierOps + `{op="put",tier="mem"}`,
		obs.MetricJobs + `{event="submitted"} 1`,
		obs.MetricJobs + `{event="done"} 1`,
		obs.MetricSimCycles + "_count",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
