package testutil

import (
	"fmt"
	"math/rand"

	"sparkgo/internal/ild"
	"sparkgo/internal/interp"
	"sparkgo/internal/ir"
	"sparkgo/internal/rtl"
	"sparkgo/internal/rtlsim"
)

// DifferentialILD is the differential test harness for the paper's case
// study: it drives `trials` seeded random ILD buffers through both the
// behavioral interpreter on the input program (the golden model) and the
// cycle-accurate simulation of the synthesized module, and asserts the
// decode outputs (the Mark bit vector and per-start Len values) are
// identical — and that both agree with the reference software decoder.
// input must be the untouched behavioral program the module was
// synthesized from, with an n-byte decode window.
//
// The module side runs on the compiled batched simulator: the netlist is
// lowered once and the trials step in lanes of rtlsim.MaxLanes, with the
// cycle watchdog derived from the FSM size (the sequential baselines
// need roughly n cycles per state; rtlsim.WatchdogCycles is a safety
// net, not a budget).
func DifferentialILD(input *ir.Program, m *rtl.Module, n, trials int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	prog := rtlsim.Compile(m)
	maxCycles := rtlsim.WatchdogCycles(m.NumStates)
	for start := 0; start < trials; start += rtlsim.MaxLanes {
		lanes := min(rtlsim.MaxLanes, trials-start)
		batch := prog.NewBatch(lanes)
		bufs := make([][]byte, lanes)
		for ln := range bufs {
			buf := ild.RandomBuffer(rng, n)
			bufs[ln] = buf
			vals := make([]int64, len(buf))
			for i, b := range buf {
				vals[i] = int64(b)
			}
			if err := batch.SetArray(ln, "B", vals); err != nil {
				return fmt.Errorf("n=%d trial %d: %w", n, start+ln, err)
			}
		}
		batch.Run(maxCycles)
		for ln, buf := range bufs {
			if err := diffOneBuffer(input, batch, ln, buf, n); err != nil {
				return fmt.Errorf("n=%d trial %d: %w", n, start+ln, err)
			}
		}
	}
	return nil
}

func diffOneBuffer(input *ir.Program, batch *rtlsim.Batch, lane int, buf []byte, n int) error {
	// Golden model: behavioral interpretation of the input program.
	env := interp.NewEnv(input)
	if err := ild.LoadBuffer(input, env, buf); err != nil {
		return err
	}
	if _, err := interp.New(input).RunMain(env); err != nil {
		return fmt.Errorf("interp: %w", err)
	}
	goldMarks := ild.ReadMarks(input, env)
	goldLens := ild.ReadLens(input, env)

	// Device under test: the synthesized module, cycle-accurately.
	if err := batch.Err(lane); err != nil {
		return fmt.Errorf("rtlsim: %w", err)
	}
	simMarks, err := batch.Array(lane, "Mark")
	if err != nil {
		return err
	}
	simLens, err := batch.Array(lane, "Len")
	if err != nil {
		return err
	}

	// Cross-check the golden model against the reference decoder, then
	// the RTL against the golden model, position by position.
	refMarks, refLens := ild.Decode(buf, n)
	for i := 0; i < n; i++ {
		if goldMarks[i] != refMarks[i] {
			return fmt.Errorf("interp vs reference: Mark[%d] = %v, want %v",
				i, goldMarks[i], refMarks[i])
		}
		if refMarks[i] && goldLens[i] != refLens[i] {
			return fmt.Errorf("interp vs reference: Len[%d] = %d, want %d",
				i, goldLens[i], refLens[i])
		}
		simMark := simMarks[i] != 0
		if simMark != goldMarks[i] {
			return fmt.Errorf("rtlsim vs interp: Mark[%d] = %v, want %v",
				i, simMark, goldMarks[i])
		}
		if simLens[i] != int64(goldLens[i]) {
			return fmt.Errorf("rtlsim vs interp: Len[%d] = %d, want %d",
				i, simLens[i], goldLens[i])
		}
	}
	return nil
}
