package testutil_test

import (
	"fmt"
	"testing"

	"sparkgo/internal/core"
	"sparkgo/internal/ild"
	"sparkgo/internal/testutil"
)

// TestDifferentialILD runs the differential harness on the synthesized
// single-cycle ILD across buffer sizes: 30 seeded random buffers per size
// (120 total) through interp (golden model) and rtlsim must decode
// identically.
func TestDifferentialILD(t *testing.T) {
	for _, n := range []int{4, 8, 16, 32} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			t.Parallel()
			p := ild.Program(n)
			res, err := core.Synthesize(p, core.Options{Preset: core.MicroprocessorBlock})
			if err != nil {
				t.Fatal(err)
			}
			if res.Cycles != 1 {
				t.Fatalf("expected single-cycle module, got %d states", res.Cycles)
			}
			if err := testutil.DifferentialILD(res.Input, res.Module, n, 30, int64(1000+n)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDifferentialILDBaseline runs the same harness on the classical-ASIC
// baseline (a multi-cycle loop FSM), so the differential check covers
// both synthesis regimes, not just the single-cycle architecture.
func TestDifferentialILDBaseline(t *testing.T) {
	n := 8
	p := ild.Program(n)
	res, err := core.Synthesize(p, core.Options{Preset: core.ClassicalASIC})
	if err != nil {
		t.Fatal(err)
	}
	if err := testutil.DifferentialILD(res.Input, res.Module, n, 10, 42); err != nil {
		t.Fatal(err)
	}
}

// TestDifferentialILDNatural covers the Fig 16 natural (while-form)
// description through the normalize-while pass.
func TestDifferentialILDNatural(t *testing.T) {
	n := 8
	p := ild.NaturalProgram(n)
	res, err := core.Synthesize(p, core.Options{
		Preset: core.MicroprocessorBlock, NormalizeWhile: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := testutil.DifferentialILD(res.Input, res.Module, n, 10, 7); err != nil {
		t.Fatal(err)
	}
}
