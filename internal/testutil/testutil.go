// Package testutil provides shared helpers for the sparkgo test suites:
// deterministic pseudo-random input generation for IR programs and
// behavioral-equivalence checking between program versions, which is the
// master invariant of the whole transformation system (DESIGN.md §5).
package testutil

import (
	"fmt"
	"math/rand"

	"sparkgo/internal/interp"
	"sparkgo/internal/ir"
)

// RandomEnv builds an interpreter environment for p with every global
// initialized from rng: scalars uniform over their type's range, arrays
// element-wise uniform. (Thin wrapper over interp.RandomEnv, kept for the
// existing test-suite call sites.)
func RandomEnv(p *ir.Program, rng *rand.Rand) *interp.Env {
	return interp.RandomEnv(p, rng)
}

// RunMain interprets p's main function in env and returns the result.
func RunMain(p *ir.Program, env *interp.Env) (int64, error) {
	return interp.New(p).RunMain(env)
}

// Mismatch describes a divergence found by Equivalent.
type Mismatch struct {
	Trial  int
	Detail string
}

func (m *Mismatch) Error() string {
	return fmt.Sprintf("trial %d: %s", m.Trial, m.Detail)
}

// Equivalent checks that programs a and b compute identical observable
// results (main's return value and every global's final state) on `trials`
// random inputs drawn from seed. Programs must share global names (they
// are matched by name, since transformed programs have distinct Var
// objects). Returns nil if equivalent on all trials.
func Equivalent(a, b *ir.Program, trials int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < trials; trial++ {
		envA := RandomEnv(a, rng)
		envB := interp.NewEnv(b)
		// Mirror envA into envB by global name.
		for _, ga := range a.Globals {
			gb := b.Global(ga.Name)
			if gb == nil {
				return &Mismatch{trial, fmt.Sprintf("global %s missing in b", ga.Name)}
			}
			if ga.Type.IsArray() {
				envB.SetArray(gb, envA.Array(ga))
			} else {
				envB.SetScalar(gb, envA.Scalar(ga))
			}
		}
		ra, errA := RunMain(a, envA)
		rb, errB := RunMain(b, envB)
		if (errA == nil) != (errB == nil) {
			return &Mismatch{trial, fmt.Sprintf("error mismatch: a=%v b=%v", errA, errB)}
		}
		if errA != nil {
			continue // both erred the same way; nothing more to compare
		}
		if ra != rb {
			return &Mismatch{trial, fmt.Sprintf("return value: a=%d b=%d", ra, rb)}
		}
		for _, ga := range a.Globals {
			gb := b.Global(ga.Name)
			if ga.Type.IsArray() {
				va, vb := envA.Array(ga), envB.Array(gb)
				for i := range va {
					if va[i] != vb[i] {
						return &Mismatch{trial, fmt.Sprintf(
							"global %s[%d]: a=%d b=%d", ga.Name, i, va[i], vb[i])}
					}
				}
			} else if envA.Scalar(ga) != envB.Scalar(gb) {
				return &Mismatch{trial, fmt.Sprintf(
					"global %s: a=%d b=%d", ga.Name, envA.Scalar(ga), envB.Scalar(gb))}
			}
		}
	}
	return nil
}
