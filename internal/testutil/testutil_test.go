package testutil_test

import (
	"math/rand"
	"testing"

	"sparkgo/internal/ir"
	"sparkgo/internal/parser"
	"sparkgo/internal/testutil"
)

func TestRandomEnvCoversRanges(t *testing.T) {
	p := parser.MustParse("t", `
uint4 small;
int8 signed_v;
bool flag;
uint8 arr[16];
void main() { }
`)
	rng := rand.New(rand.NewSource(1))
	sawNegative := false
	sawBigSmall := false
	for i := 0; i < 200; i++ {
		env := testutil.RandomEnv(p, rng)
		s := env.Scalar(p.Global("small"))
		if s < 0 || s > 15 {
			t.Fatalf("uint4 out of range: %d", s)
		}
		if s > 7 {
			sawBigSmall = true
		}
		sv := env.Scalar(p.Global("signed_v"))
		if sv < -128 || sv > 127 {
			t.Fatalf("int8 out of range: %d", sv)
		}
		if sv < 0 {
			sawNegative = true
		}
		f := env.Scalar(p.Global("flag"))
		if f != 0 && f != 1 {
			t.Fatalf("bool out of range: %d", f)
		}
	}
	if !sawNegative {
		t.Error("random int8 never negative in 200 draws")
	}
	if !sawBigSmall {
		t.Error("random uint4 never above 7 in 200 draws")
	}
}

func TestEquivalentDetectsDifference(t *testing.T) {
	a := parser.MustParse("a", `
uint8 x;
uint8 out;
void main() { out = x + 1; }
`)
	b := parser.MustParse("b", `
uint8 x;
uint8 out;
void main() { out = x + 2; }
`)
	if err := testutil.Equivalent(a, b, 20, 1); err == nil {
		t.Error("expected mismatch between +1 and +2 programs")
	}
	if err := testutil.Equivalent(a, ir.CloneProgram(a), 20, 1); err != nil {
		t.Errorf("clone should be equivalent: %v", err)
	}
}

func TestEquivalentMatchesByName(t *testing.T) {
	// Same semantics, different Var objects (independent parses).
	a := parser.MustParse("a", "uint8 g;\nvoid main() { g = g * 2; }")
	b := parser.MustParse("b", "uint8 g;\nvoid main() { g = g + g; }")
	if err := testutil.Equivalent(a, b, 30, 9); err != nil {
		t.Errorf("g*2 and g+g should be equivalent: %v", err)
	}
}
