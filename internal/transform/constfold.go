package transform

import (
	"sparkgo/internal/interp"
	"sparkgo/internal/ir"
)

// ConstFold is a program-wide constant-folding pass: it evaluates operators
// with constant operands, simplifies algebraic identities, folds selects
// with constant conditions, and collapses casts of constants.
func ConstFold() Pass {
	return PassFunc{PassName: "const-fold", Fn: func(p *ir.Program) (bool, error) {
		changed := false
		for _, f := range p.Funcs {
			ir.RewriteAllExprs(f.Body, func(e ir.Expr) ir.Expr {
				ne := FoldExpr(e)
				if ne != e {
					changed = true
				}
				return ne
			})
		}
		return changed, nil
	}}
}

// FoldExpr simplifies a single expression node whose children are already
// folded, returning either the same node or a simpler replacement.
func FoldExpr(e ir.Expr) ir.Expr {
	switch x := e.(type) {
	case *ir.BinExpr:
		return foldBin(x)
	case *ir.UnExpr:
		if c, ok := x.X.(*ir.ConstExpr); ok {
			return ir.C(interp.EvalUnOp(x.Op, c.Val, x.Typ), x.Typ)
		}
		// !!b and ~~x and --x collapse.
		if inner, ok := x.X.(*ir.UnExpr); ok && inner.Op == x.Op && x.Op != ir.OpLNot {
			if inner.X.Type().Equal(x.Typ) {
				return inner.X
			}
		}
	case *ir.SelExpr:
		if c, ok := x.Cond.(*ir.ConstExpr); ok {
			if c.Val != 0 {
				return ir.Cast(x.Then, x.Typ)
			}
			return ir.Cast(x.Else, x.Typ)
		}
		// c ? e : e  →  e
		if exprEqual(x.Then, x.Else) && IsPure(x.Then) {
			return ir.Cast(x.Then, x.Typ)
		}
	case *ir.CastExpr:
		if c, ok := x.X.(*ir.ConstExpr); ok {
			return ir.C(c.Val, x.Typ)
		}
		if x.X.Type().Equal(x.Typ) {
			return x.X
		}
		// Collapse cast chains when the inner cast does not narrow
		// below the outer width (then the intermediate cast cannot
		// change any bit the outer result keeps — for unsigned; be
		// conservative and only collapse same-signedness widenings).
		if inner, ok := x.X.(*ir.CastExpr); ok {
			it, ot, st := inner.Typ, x.Typ, inner.X.Type()
			if it.IsInt() && ot.IsInt() && st.IsInt() &&
				!it.Signed && !ot.Signed && !st.Signed &&
				it.Bits >= st.Bits {
				return ir.Cast(inner.X, ot)
			}
		}
	}
	return e
}

func foldBin(x *ir.BinExpr) ir.Expr {
	lc, lIsC := x.L.(*ir.ConstExpr)
	rc, rIsC := x.R.(*ir.ConstExpr)
	if lIsC && rIsC {
		v, err := interp.EvalBinOp(x.Op, lc.Val, rc.Val, x.Typ,
			interp.UnsignedOperands(lc.Typ, rc.Typ))
		if err == nil {
			return ir.C(v, x.Typ)
		}
		return x
	}
	// Algebraic identities. Only applied when the surviving operand
	// already has the result type, so no implicit width change sneaks in.
	sameType := func(e ir.Expr) bool { return e.Type().Equal(x.Typ) }
	if rIsC {
		switch {
		case rc.Val == 0 && (x.Op == ir.OpAdd || x.Op == ir.OpSub ||
			x.Op == ir.OpOr || x.Op == ir.OpXor ||
			x.Op == ir.OpShl || x.Op == ir.OpShr) && sameType(x.L):
			return x.L
		case rc.Val == 0 && (x.Op == ir.OpMul || x.Op == ir.OpAnd):
			return ir.C(0, x.Typ)
		case rc.Val == 1 && (x.Op == ir.OpMul || x.Op == ir.OpDiv) && sameType(x.L):
			return x.L
		case x.Op == ir.OpAnd && x.L.Type().IsInt() &&
			uint64(rc.Val)&x.L.Type().Mask() == x.L.Type().Mask() &&
			!x.L.Type().Signed && sameType(x.L):
			return x.L // x & all-ones
		case x.Op == ir.OpLAnd:
			if rc.Val != 0 {
				return truthyOf(x.L)
			}
			// x && false: x is pure, so drop it.
			if IsPure(x.L) {
				return ir.CBool(false)
			}
		case x.Op == ir.OpLOr:
			if rc.Val == 0 {
				return truthyOf(x.L)
			}
			if IsPure(x.L) {
				return ir.CBool(true)
			}
		}
	}
	if lIsC {
		switch {
		case lc.Val == 0 && (x.Op == ir.OpAdd || x.Op == ir.OpOr || x.Op == ir.OpXor) && sameType(x.R):
			return x.R
		case lc.Val == 0 && (x.Op == ir.OpMul || x.Op == ir.OpAnd ||
			x.Op == ir.OpDiv || x.Op == ir.OpRem ||
			x.Op == ir.OpShl || x.Op == ir.OpShr):
			return ir.C(0, x.Typ)
		case lc.Val == 1 && x.Op == ir.OpMul && sameType(x.R):
			return x.R
		case x.Op == ir.OpLAnd && lc.Val != 0:
			return truthyOf(x.R)
		case x.Op == ir.OpLAnd && lc.Val == 0:
			return ir.CBool(false)
		case x.Op == ir.OpLOr && lc.Val == 0:
			return truthyOf(x.R)
		case x.Op == ir.OpLOr && lc.Val != 0:
			return ir.CBool(true)
		}
	}
	// x - x, x ^ x  →  0 ; x == x → true (pure x only).
	if exprEqual(x.L, x.R) && IsPure(x.L) {
		switch x.Op {
		case ir.OpSub, ir.OpXor:
			return ir.C(0, x.Typ)
		case ir.OpEq, ir.OpLe, ir.OpGe:
			return ir.CBool(true)
		case ir.OpNe, ir.OpLt, ir.OpGt:
			return ir.CBool(false)
		case ir.OpAnd, ir.OpOr:
			if sameType(x.L) {
				return x.L
			}
		}
	}
	return x
}

func truthyOf(e ir.Expr) ir.Expr {
	if e.Type().IsBool() {
		return e
	}
	return ir.Bin(ir.OpNe, e, ir.C(0, e.Type()))
}

// exprEqual reports structural equality of two expressions (same shape,
// same variables by identity, same constants).
func exprEqual(a, b ir.Expr) bool {
	switch x := a.(type) {
	case *ir.ConstExpr:
		y, ok := b.(*ir.ConstExpr)
		return ok && x.Val == y.Val && x.Typ.Equal(y.Typ)
	case *ir.VarExpr:
		y, ok := b.(*ir.VarExpr)
		return ok && x.V == y.V
	case *ir.IndexExpr:
		y, ok := b.(*ir.IndexExpr)
		return ok && x.Arr == y.Arr && exprEqual(x.Index, y.Index)
	case *ir.BinExpr:
		y, ok := b.(*ir.BinExpr)
		return ok && x.Op == y.Op && x.Typ.Equal(y.Typ) &&
			exprEqual(x.L, y.L) && exprEqual(x.R, y.R)
	case *ir.UnExpr:
		y, ok := b.(*ir.UnExpr)
		return ok && x.Op == y.Op && x.Typ.Equal(y.Typ) && exprEqual(x.X, y.X)
	case *ir.SelExpr:
		y, ok := b.(*ir.SelExpr)
		return ok && x.Typ.Equal(y.Typ) && exprEqual(x.Cond, y.Cond) &&
			exprEqual(x.Then, y.Then) && exprEqual(x.Else, y.Else)
	case *ir.CastExpr:
		y, ok := b.(*ir.CastExpr)
		return ok && x.Typ.Equal(y.Typ) && exprEqual(x.X, y.X)
	}
	return false
}
