package transform

import (
	"sparkgo/internal/ir"
)

// ConstProp is flow-sensitive constant propagation with branch folding.
// It is the transformation of paper Figs 3(a) and 14: after full loop
// unrolling, the constant assignment to the loop index variable propagates
// through all replicated iterations, the index variable disappears from the
// code, and conditionals with now-constant conditions fold away (e.g. the
// first "if (1 == NextStartByte)" of the unrolled ILD, which is always
// taken).
//
// Semantics note: locals are defined to be zero-initialized (package interp
// and the RTL both guarantee this), so a local's initial value is the
// constant 0. Globals and parameters start unknown.
func ConstProp() Pass {
	return PassFunc{PassName: "const-prop", Fn: func(p *ir.Program) (bool, error) {
		changed := false
		for _, f := range p.Funcs {
			cp := &constProp{prog: p, fn: f}
			state := cp.initialState()
			if cp.block(f.Body, state) {
				changed = true
			}
		}
		return changed, nil
	}}
}

type constVal struct {
	known bool
	val   int64
}

type constState map[*ir.Var]constVal

func (s constState) clone() constState {
	n := make(constState, len(s))
	for k, v := range s {
		n[k] = v
	}
	return n
}

type constProp struct {
	prog *ir.Program
	fn   *ir.Func
}

func (cp *constProp) initialState() constState {
	s := constState{}
	for _, v := range cp.fn.Locals {
		if !v.IsParam && !v.IsGlobal && v.Type.IsScalar() {
			s[v] = constVal{known: true, val: 0}
		}
	}
	return s
}

// substitute rewrites e, replacing reads of known-constant variables and
// folding, and returns the new expression.
func (cp *constProp) substitute(e ir.Expr, s constState) (ir.Expr, bool) {
	changed := false
	out := ir.RewriteExpr(e, func(x ir.Expr) ir.Expr {
		if v, ok := x.(*ir.VarExpr); ok {
			if cv, ok := s[v.V]; ok && cv.known {
				changed = true
				return ir.C(cv.val, v.V.Type)
			}
			return x
		}
		nx := FoldExpr(x)
		if nx != x {
			changed = true
		}
		return nx
	})
	return out, changed
}

// invalidateWritten clears state entries for everything the statements may
// write. The anyGlobalMarker sentinel (calls) clears all globals.
func invalidateWritten(stmts []ir.Stmt, s constState) {
	w := map[*ir.Var]bool{}
	writtenVars(stmts, w)
	if w[anyGlobalMarker] {
		for v := range s {
			if v.IsGlobal {
				delete(s, v)
			}
		}
	}
	for v := range w {
		delete(s, v)
	}
}

// block propagates through a statement list, mutating statements in place
// and updating state. It returns whether anything changed. Statement-list
// mutation (branch folding) rebuilds the slice.
func (cp *constProp) block(b *ir.Block, s constState) bool {
	changed := false
	var out []ir.Stmt
	for _, st := range b.Stmts {
		repl, ch := cp.stmt(st, s)
		changed = changed || ch
		out = append(out, repl...)
	}
	if len(out) != len(b.Stmts) {
		changed = true
	}
	b.Stmts = out
	return changed
}

// stmt processes one statement, returning its replacement (usually itself;
// empty or inlined-branch for folded ifs) and whether anything changed.
func (cp *constProp) stmt(st ir.Stmt, s constState) ([]ir.Stmt, bool) {
	switch x := st.(type) {
	case *ir.AssignStmt:
		changed := false
		if _, isCall := x.RHS.(*ir.CallExpr); isCall {
			// Substitute in call arguments; a call clobbers globals.
			call := x.RHS.(*ir.CallExpr)
			for i, a := range call.Args {
				na, ch := cp.substitute(a, s)
				call.Args[i] = na
				changed = changed || ch
			}
			for v := range s {
				if v.IsGlobal {
					delete(s, v)
				}
			}
		} else {
			nr, ch := cp.substitute(x.RHS, s)
			x.RHS = nr
			changed = changed || ch
		}
		switch lhs := x.LHS.(type) {
		case *ir.VarExpr:
			if c, ok := x.RHS.(*ir.ConstExpr); ok {
				s[lhs.V] = constVal{known: true, val: lhs.V.Type.Canon(c.Val)}
			} else {
				delete(s, lhs.V)
			}
		case *ir.IndexExpr:
			ni, ch := cp.substitute(lhs.Index, s)
			lhs.Index = ni
			changed = changed || ch
			// Array contents are not tracked; nothing to update.
		}
		return []ir.Stmt{x}, changed

	case *ir.IfStmt:
		nc, changed := cp.substitute(x.Cond, s)
		x.Cond = nc
		if c, ok := x.Cond.(*ir.ConstExpr); ok {
			// Branch folding: splice the taken branch in place.
			var taken *ir.Block
			if c.Val != 0 {
				taken = x.Then
			} else {
				taken = x.Else
			}
			if taken == nil {
				return nil, true
			}
			cp.block(taken, s)
			return taken.Stmts, true
		}
		thenState := s.clone()
		elseState := s.clone()
		if cp.block(x.Then, thenState) {
			changed = true
		}
		if x.Else != nil {
			if cp.block(x.Else, elseState) {
				changed = true
			}
		}
		// Join: keep only facts that hold on both paths.
		for v, cv := range thenState {
			ev, ok := elseState[v]
			if ok && ev.known == cv.known && ev.val == cv.val {
				continue
			}
			delete(thenState, v)
		}
		for v := range s {
			delete(s, v)
		}
		for v, cv := range thenState {
			s[v] = cv
		}
		return []ir.Stmt{x}, changed

	case *ir.ForStmt:
		changed := false
		if x.Init != nil {
			repl, ch := cp.stmt(x.Init, s)
			changed = changed || ch
			if len(repl) == 1 {
				x.Init = repl[0].(*ir.AssignStmt)
			}
		}
		// Everything written in the loop is unknown at the condition
		// and afterwards (no iteration needed: we only remove facts).
		body := append([]ir.Stmt{}, x.Body.Stmts...)
		if x.Post != nil {
			body = append(body, x.Post)
		}
		invalidateWritten(body, s)
		nc, ch := cp.substitute(x.Cond, s)
		x.Cond = nc
		changed = changed || ch
		inner := s.clone()
		if cp.block(x.Body, inner) {
			changed = true
		}
		if x.Post != nil {
			ni, ch := cp.substitute(x.Post.RHS, inner)
			x.Post.RHS = ni
			changed = changed || ch
		}
		return []ir.Stmt{x}, changed

	case *ir.WhileStmt:
		invalidateWritten(x.Body.Stmts, s)
		nc, changed := cp.substitute(x.Cond, s)
		x.Cond = nc
		inner := s.clone()
		if cp.block(x.Body, inner) {
			changed = true
		}
		return []ir.Stmt{x}, changed

	case *ir.ReturnStmt:
		if x.Val == nil {
			return []ir.Stmt{x}, false
		}
		nv, changed := cp.substitute(x.Val, s)
		x.Val = nv
		return []ir.Stmt{x}, changed

	case *ir.ExprStmt:
		changed := false
		for i, a := range x.Call.Args {
			na, ch := cp.substitute(a, s)
			x.Call.Args[i] = na
			changed = changed || ch
		}
		for v := range s {
			if v.IsGlobal {
				delete(s, v)
			}
		}
		return []ir.Stmt{x}, changed

	case *ir.Block:
		changed := cp.block(x, s)
		return []ir.Stmt{x}, changed
	}
	return []ir.Stmt{st}, false
}
