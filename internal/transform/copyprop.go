package transform

import (
	"sparkgo/internal/ir"
)

// CopyProp is flow-sensitive copy propagation: after "a = b;", reads of a
// are replaced by b until either variable is redefined. Together with DCE
// it removes the copy chains that inlining and speculation leave behind
// (the paper applies it as one of the supporting "standard compiler
// transformations").
//
// Only same-type scalar copies participate (a width-changing assignment
// contains a cast and is left alone), so replacement is always exact.
func CopyProp() Pass {
	return PassFunc{PassName: "copy-prop", Fn: func(p *ir.Program) (bool, error) {
		changed := false
		for _, f := range p.Funcs {
			cpp := &copyProp{}
			if cpp.block(f.Body, copyState{}) {
				changed = true
			}
		}
		return changed, nil
	}}
}

// copyState maps a variable to the variable it is currently a copy of.
type copyState map[*ir.Var]*ir.Var

func (s copyState) clone() copyState {
	n := make(copyState, len(s))
	for k, v := range s {
		n[k] = v
	}
	return n
}

// kill removes facts invalidated by a write to v: both "v = x" facts and
// any "y = v" facts.
func (s copyState) kill(v *ir.Var) {
	delete(s, v)
	for k, src := range s {
		if src == v {
			delete(s, k)
		}
	}
}

type copyProp struct{}

func (cp *copyProp) substitute(e ir.Expr, s copyState) (ir.Expr, bool) {
	changed := false
	out := ir.RewriteExpr(e, func(x ir.Expr) ir.Expr {
		if v, ok := x.(*ir.VarExpr); ok {
			if src, ok := s[v.V]; ok {
				changed = true
				return ir.V(src)
			}
		}
		return x
	})
	return out, changed
}

func (cp *copyProp) invalidate(stmts []ir.Stmt, s copyState) {
	w := map[*ir.Var]bool{}
	writtenVars(stmts, w)
	if w[anyGlobalMarker] {
		for v := range s {
			if v.IsGlobal {
				s.kill(v)
			}
		}
		for k, src := range s {
			if src.IsGlobal {
				delete(s, k)
			}
		}
	}
	for v := range w {
		s.kill(v)
	}
}

func (cp *copyProp) block(b *ir.Block, s copyState) bool {
	changed := false
	for _, st := range b.Stmts {
		if cp.stmt(st, s) {
			changed = true
		}
	}
	return changed
}

func (cp *copyProp) stmt(st ir.Stmt, s copyState) bool {
	changed := false
	switch x := st.(type) {
	case *ir.AssignStmt:
		if call, isCall := x.RHS.(*ir.CallExpr); isCall {
			for i, a := range call.Args {
				na, ch := cp.substitute(a, s)
				call.Args[i] = na
				changed = changed || ch
			}
			// Call clobbers globals.
			for v := range s {
				if v.IsGlobal {
					s.kill(v)
				}
			}
			for k, src := range s {
				if src.IsGlobal {
					delete(s, k)
				}
			}
		} else {
			nr, ch := cp.substitute(x.RHS, s)
			x.RHS = nr
			changed = changed || ch
		}
		switch lhs := x.LHS.(type) {
		case *ir.VarExpr:
			s.kill(lhs.V)
			if src, ok := x.RHS.(*ir.VarExpr); ok && src.V != lhs.V &&
				src.V.Type.Equal(lhs.V.Type) {
				s[lhs.V] = src.V
			}
		case *ir.IndexExpr:
			ni, ch := cp.substitute(lhs.Index, s)
			lhs.Index = ni
			changed = changed || ch
			s.kill(lhs.Arr)
		}
	case *ir.IfStmt:
		nc, ch := cp.substitute(x.Cond, s)
		x.Cond = nc
		changed = changed || ch
		thenState := s.clone()
		elseState := s.clone()
		if cp.block(x.Then, thenState) {
			changed = true
		}
		if x.Else != nil {
			if cp.block(x.Else, elseState) {
				changed = true
			}
		}
		for v, src := range thenState {
			if elseState[v] != src {
				delete(thenState, v)
			}
		}
		for v := range s {
			delete(s, v)
		}
		for v, src := range thenState {
			s[v] = src
		}
	case *ir.ForStmt:
		if x.Init != nil {
			if cp.stmt(x.Init, s) {
				changed = true
			}
		}
		body := append([]ir.Stmt{}, x.Body.Stmts...)
		if x.Post != nil {
			body = append(body, x.Post)
		}
		cp.invalidate(body, s)
		nc, ch := cp.substitute(x.Cond, s)
		x.Cond = nc
		changed = changed || ch
		inner := s.clone()
		if cp.block(x.Body, inner) {
			changed = true
		}
		if x.Post != nil {
			nr, ch := cp.substitute(x.Post.RHS, inner)
			x.Post.RHS = nr
			changed = changed || ch
		}
	case *ir.WhileStmt:
		cp.invalidate(x.Body.Stmts, s)
		nc, ch := cp.substitute(x.Cond, s)
		x.Cond = nc
		changed = changed || ch
		inner := s.clone()
		if cp.block(x.Body, inner) {
			changed = true
		}
	case *ir.ReturnStmt:
		if x.Val != nil {
			nv, ch := cp.substitute(x.Val, s)
			x.Val = nv
			changed = changed || ch
		}
	case *ir.ExprStmt:
		for i, a := range x.Call.Args {
			na, ch := cp.substitute(a, s)
			x.Call.Args[i] = na
			changed = changed || ch
		}
		for v := range s {
			if v.IsGlobal {
				s.kill(v)
			}
		}
		for k, src := range s {
			if src.IsGlobal {
				delete(s, k)
			}
		}
	case *ir.Block:
		if cp.block(x, s) {
			changed = true
		}
	}
	return changed
}
