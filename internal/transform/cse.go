package transform

import (
	"sparkgo/internal/ir"
)

// CSE performs common-subexpression elimination on whole right-hand sides:
// when the same pure expression is assigned twice with no intervening write
// to any of its inputs, the second assignment becomes a copy of the first
// destination. After inlining and unrolling the ILD this removes the
// duplicate byte loads and the repeated Need/LengthContribution lookups
// that adjacent four-byte windows share.
//
// Availability is tracked flow-sensitively: an expression is invalidated by
// a write to any variable (or array) it reads; facts established inside a
// conditional branch do not survive the join, but outer facts flow into
// branches (dominator availability).
func CSE() Pass {
	return PassFunc{PassName: "cse", Fn: func(p *ir.Program) (bool, error) {
		changed := false
		for _, f := range p.Funcs {
			c := &cse{fn: f}
			if c.block(f.Body, availMap{}) {
				changed = true
			}
		}
		return changed, nil
	}}
}

// availMap maps a canonical expression rendering to the variable holding
// its value.
type availMap map[string]*ir.Var

func (a availMap) clone() availMap {
	n := make(availMap, len(a))
	for k, v := range a {
		n[k] = v
	}
	return n
}

type cse struct {
	fn *ir.Func
	// reads[key] = set of vars the keyed expression reads. Identical keys
	// always denote identical expressions, so the map is function-wide.
	reads map[string]map[*ir.Var]bool
}

// keyOf renders an expression canonically (PrintExpr is deterministic and
// includes variable names, operators, and constant values; variable names
// are unique within a function, so collisions cannot occur).
func keyOf(e ir.Expr) string { return e.Type().String() + "|" + ir.PrintExpr(e) }

func (c *cse) block(b *ir.Block, avail availMap) bool {
	changed := false
	if c.reads == nil {
		c.reads = map[string]map[*ir.Var]bool{}
	}
	reads := c.reads
	killAll := func(v *ir.Var) {
		for k := range avail {
			if reads[k] == nil || reads[k][v] {
				delete(avail, k)
			}
		}
		for k, holder := range avail {
			if holder == v {
				delete(avail, k)
			}
		}
	}
	killGlobals := func() {
		for k := range avail {
			anyGlobal := reads[k] == nil
			for v := range reads[k] {
				if v.IsGlobal {
					anyGlobal = true
				}
			}
			if anyGlobal {
				delete(avail, k)
			}
		}
		for k, holder := range avail {
			if holder.IsGlobal {
				delete(avail, k)
			}
		}
	}

	for _, s := range b.Stmts {
		switch x := s.(type) {
		case *ir.AssignStmt:
			if _, isCall := x.RHS.(*ir.CallExpr); isCall {
				killGlobals()
				if lv, ok := x.LHS.(*ir.VarExpr); ok {
					killAll(lv.V)
				}
				continue
			}
			worthCSE := isNontrivial(x.RHS) && IsPure(x.RHS)
			key := keyOf(x.RHS)
			// The read set of the ORIGINAL expression — the semantic
			// reads of the canonical key. It must drive both the
			// self-read guard and the recorded fact; using the
			// substituted copy's reads would let a later write to an
			// original input slip past killAll.
			origReads := map[*ir.Var]bool{}
			ir.VarsRead(x.RHS, origReads)
			origType := x.RHS.Type()
			if worthCSE {
				if holder, ok := avail[key]; ok {
					x.RHS = ir.Cast(ir.V(holder), x.LHS.Type())
					changed = true
				}
			}
			switch lhs := x.LHS.(type) {
			case *ir.VarExpr:
				killAll(lhs.V)
				if worthCSE && origType.Equal(lhs.V.Type) && !origReads[lhs.V] {
					if _, stillHas := avail[key]; !stillHas {
						avail[key] = lhs.V
						reads[key] = origReads
					}
				}
			case *ir.IndexExpr:
				killAll(lhs.Arr)
			}
		case *ir.IfStmt:
			thenAvail := avail.clone()
			if c.block(x.Then, thenAvail) {
				changed = true
			}
			if x.Else != nil {
				elseAvail := avail.clone()
				if c.block(x.Else, elseAvail) {
					changed = true
				}
			}
			// Conservative join: drop facts about anything written in
			// either branch.
			w := map[*ir.Var]bool{}
			writtenVars([]ir.Stmt{x}, w)
			if w[anyGlobalMarker] {
				killGlobals()
			}
			for v := range w {
				killAll(v)
			}
		case *ir.ForStmt, *ir.WhileStmt:
			// Invalidate everything the loop writes, then process the
			// body with the surviving facts.
			w := map[*ir.Var]bool{}
			writtenVars([]ir.Stmt{s}, w)
			if w[anyGlobalMarker] {
				killGlobals()
			}
			for v := range w {
				killAll(v)
			}
			switch l := s.(type) {
			case *ir.ForStmt:
				if c.block(l.Body, avail.clone()) {
					changed = true
				}
			case *ir.WhileStmt:
				if c.block(l.Body, avail.clone()) {
					changed = true
				}
			}
		case *ir.ExprStmt:
			killGlobals()
		case *ir.Block:
			if c.block(x, avail) {
				changed = true
			}
		case *ir.ReturnStmt:
			// no effect on availability
		}
	}
	return changed
}

// isNontrivial reports whether an expression is worth deduplicating:
// constants, bare variable reads, and casts of variables are cheaper than
// the copy CSE would introduce.
func isNontrivial(e ir.Expr) bool {
	switch x := e.(type) {
	case *ir.ConstExpr, *ir.VarExpr:
		return false
	case *ir.CastExpr:
		return isNontrivial(x.X)
	}
	return true
}
