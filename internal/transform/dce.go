package transform

import (
	"sparkgo/internal/ir"
)

// DCE is dead-code elimination: assignments whose destination is never
// subsequently read are removed, empty conditionals and loops collapse, and
// unreferenced locals are dropped from the function. Writes to globals are
// always observable (globals are the block's architectural outputs), as are
// call statements.
//
// The paper relies on DCE to clean up after every coarse transformation:
// eliminated loop-index variables (Fig 14), dead copies from inlining and
// speculation, and the "unnecessary variables and variable copies" of the
// wire-variable insertion of §3.1.2.
func DCE() Pass {
	return PassFunc{PassName: "dce", Fn: func(p *ir.Program) (bool, error) {
		changed := false
		for _, f := range p.Funcs {
			d := &dce{prog: p, fn: f}
			exit := d.exitLive()
			newStmts, _ := d.apply(f.Body.Stmts, exit)
			if len(newStmts) != len(f.Body.Stmts) {
				changed = true
			}
			f.Body.Stmts = newStmts
			if d.changed {
				changed = true
			}
			if d.pruneLocals() {
				changed = true
			}
		}
		return changed, nil
	}}
}

type liveSet map[*ir.Var]bool

func (l liveSet) clone() liveSet {
	n := make(liveSet, len(l))
	for k := range l {
		n[k] = true
	}
	return n
}

func (l liveSet) addAll(o liveSet) bool {
	grew := false
	for k := range o {
		if !l[k] {
			l[k] = true
			grew = true
		}
	}
	return grew
}

type dce struct {
	prog    *ir.Program
	fn      *ir.Func
	changed bool
}

// exitLive is the liveness at function exit: every global (the outside
// world observes them).
func (d *dce) exitLive() liveSet {
	l := liveSet{}
	for _, g := range d.prog.Globals {
		l[g] = true
	}
	return l
}

func addReads(e ir.Expr, l liveSet) {
	m := map[*ir.Var]bool{}
	ir.VarsRead(e, m)
	for v := range m {
		l[v] = true
	}
}

// liveIn computes liveness before the statement list given liveness after,
// without mutating anything (used for loop fixed points).
func (d *dce) liveIn(stmts []ir.Stmt, liveOut liveSet) liveSet {
	live := liveOut.clone()
	for i := len(stmts) - 1; i >= 0; i-- {
		live = d.liveInStmt(stmts[i], live)
	}
	return live
}

func (d *dce) liveInStmt(s ir.Stmt, live liveSet) liveSet {
	switch x := s.(type) {
	case *ir.AssignStmt:
		if call, isCall := x.RHS.(*ir.CallExpr); isCall {
			live = live.clone()
			if lv, ok := x.LHS.(*ir.VarExpr); ok {
				delete(live, lv.V)
			}
			for _, a := range call.Args {
				addReads(a, live)
			}
			for _, g := range d.prog.Globals {
				live[g] = true
			}
			return live
		}
		switch lhs := x.LHS.(type) {
		case *ir.VarExpr:
			if !live[lhs.V] && !lhs.V.IsGlobal {
				return live // dead; contributes nothing
			}
			live = live.clone()
			delete(live, lhs.V)
			addReads(x.RHS, live)
			return live
		case *ir.IndexExpr:
			if !live[lhs.Arr] && !lhs.Arr.IsGlobal {
				return live
			}
			live = live.clone()
			addReads(lhs.Index, live)
			addReads(x.RHS, live)
			live[lhs.Arr] = true // stores don't kill (partial writes)
			return live
		}
		return live
	case *ir.IfStmt:
		t := d.liveIn(x.Then.Stmts, live)
		e := live
		if x.Else != nil {
			e = d.liveIn(x.Else.Stmts, live)
		}
		out := t.clone()
		out.addAll(e)
		addReads(x.Cond, out)
		return out
	case *ir.ForStmt:
		x2 := live.clone()
		addReads(x.Cond, x2)
		for {
			body := append([]ir.Stmt{}, x.Body.Stmts...)
			if x.Post != nil {
				body = append(body, x.Post)
			}
			in := d.liveIn(body, x2)
			addReads(x.Cond, in)
			if !x2.addAll(in) {
				break
			}
		}
		if x.Init != nil {
			return d.liveInStmt(x.Init, x2)
		}
		return x2
	case *ir.WhileStmt:
		x2 := live.clone()
		addReads(x.Cond, x2)
		for {
			in := d.liveIn(x.Body.Stmts, x2)
			addReads(x.Cond, in)
			if !x2.addAll(in) {
				break
			}
		}
		return x2
	case *ir.ReturnStmt:
		// Function exits: only globals (and the value) matter.
		l := d.exitLive()
		if x.Val != nil {
			addReads(x.Val, l)
		}
		return l
	case *ir.ExprStmt:
		live = live.clone()
		for _, a := range x.Call.Args {
			addReads(a, live)
		}
		for _, g := range d.prog.Globals {
			live[g] = true
		}
		return live
	case *ir.Block:
		return d.liveIn(x.Stmts, live)
	}
	return live
}

// apply removes dead statements, returning the new list and its live-in.
func (d *dce) apply(stmts []ir.Stmt, liveOut liveSet) ([]ir.Stmt, liveSet) {
	live := liveOut.clone()
	var out []ir.Stmt // built in reverse
	for i := len(stmts) - 1; i >= 0; i-- {
		s := stmts[i]
		keep := true
		switch x := s.(type) {
		case *ir.AssignStmt:
			if _, isCall := x.RHS.(*ir.CallExpr); !isCall {
				switch lhs := x.LHS.(type) {
				case *ir.VarExpr:
					if !live[lhs.V] && !lhs.V.IsGlobal {
						keep = false
					}
				case *ir.IndexExpr:
					if !live[lhs.Arr] && !lhs.Arr.IsGlobal {
						keep = false
					}
				}
			}
		case *ir.IfStmt:
			newThen, _ := d.apply(x.Then.Stmts, live)
			x.Then.Stmts = newThen
			if x.Else != nil {
				newElse, _ := d.apply(x.Else.Stmts, live)
				x.Else.Stmts = newElse
				if len(newElse) == 0 {
					x.Else = nil
				}
			}
			if len(x.Then.Stmts) == 0 && x.Else == nil {
				keep = false
			} else if len(x.Then.Stmts) == 0 && x.Else != nil {
				// Normalize: if (c) {} else {B}  →  if (!c) {B}
				x.Cond = FoldExpr(ir.Un(ir.OpLNot, x.Cond))
				x.Then = x.Else
				x.Else = nil
				d.changed = true
			}
		case *ir.ForStmt:
			// Stabilize liveness across the back edge first.
			x2 := live.clone()
			addReads(x.Cond, x2)
			for {
				body := append([]ir.Stmt{}, x.Body.Stmts...)
				if x.Post != nil {
					body = append(body, x.Post)
				}
				in := d.liveIn(body, x2)
				addReads(x.Cond, in)
				if !x2.addAll(in) {
					break
				}
			}
			newBody, _ := d.apply(x.Body.Stmts, x2)
			x.Body.Stmts = newBody
			if len(newBody) == 0 {
				deadInit := x.Init == nil || isDeadWrite(x.Init, live)
				deadPost := x.Post == nil || isDeadWrite(x.Post, live)
				if deadInit && deadPost {
					keep = false
				}
			}
		case *ir.WhileStmt:
			x2 := live.clone()
			addReads(x.Cond, x2)
			for {
				in := d.liveIn(x.Body.Stmts, x2)
				addReads(x.Cond, in)
				if !x2.addAll(in) {
					break
				}
			}
			newBody, _ := d.apply(x.Body.Stmts, x2)
			x.Body.Stmts = newBody
			if len(newBody) == 0 {
				keep = false
			}
		case *ir.Block:
			newStmts, _ := d.apply(x.Stmts, live)
			x.Stmts = newStmts
			if len(newStmts) == 0 {
				keep = false
			}
		}
		if keep {
			live = d.liveInStmt(s, live)
			out = append(out, s)
		} else {
			d.changed = true
		}
	}
	// Reverse.
	for l, r := 0, len(out)-1; l < r; l, r = l+1, r-1 {
		out[l], out[r] = out[r], out[l]
	}
	return out, live
}

// isDeadWrite reports whether the assignment writes only a variable that is
// dead in live (so dropping it is unobservable).
func isDeadWrite(a *ir.AssignStmt, live liveSet) bool {
	if _, isCall := a.RHS.(*ir.CallExpr); isCall {
		return false
	}
	lv, ok := a.LHS.(*ir.VarExpr)
	return ok && !live[lv.V] && !lv.V.IsGlobal
}

// pruneLocals removes locals that no longer appear anywhere in the body.
func (d *dce) pruneLocals() bool {
	used := map[*ir.Var]bool{}
	ir.WalkStmts(d.fn.Body, func(s ir.Stmt) bool {
		ir.WalkStmtExprs(s, func(e ir.Expr) {
			ir.WalkExpr(e, func(x ir.Expr) bool {
				switch n := x.(type) {
				case *ir.VarExpr:
					used[n.V] = true
				case *ir.IndexExpr:
					used[n.Arr] = true
				}
				return true
			})
		})
		return true
	})
	var kept []*ir.Var
	for _, v := range d.fn.Locals {
		if v.IsParam || used[v] {
			kept = append(kept, v)
		}
	}
	changed := len(kept) != len(d.fn.Locals)
	d.fn.Locals = kept
	return changed
}
