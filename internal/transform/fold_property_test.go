package transform_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sparkgo/internal/interp"
	"sparkgo/internal/ir"
	"sparkgo/internal/transform"
)

// genExpr builds a random expression tree over the given variables. Used
// with testing/quick to establish that FoldExpr never changes the value of
// an expression — the foundation every pass that calls it relies on.
func genExpr(rng *rand.Rand, vars []*ir.Var, depth int) ir.Expr {
	if depth <= 0 || rng.Intn(4) == 0 {
		if rng.Intn(2) == 0 {
			t := []*ir.Type{ir.U4, ir.U8, ir.U16, ir.Int(8)}[rng.Intn(4)]
			return ir.C(rng.Int63n(1<<12)-(1<<11), t)
		}
		return ir.V(vars[rng.Intn(len(vars))])
	}
	switch rng.Intn(8) {
	case 0:
		return ir.Un([]ir.UnOp{ir.OpNeg, ir.OpNot, ir.OpLNot}[rng.Intn(3)],
			genExpr(rng, vars, depth-1))
	case 1:
		cond := ir.Bin(ir.OpNe, genExpr(rng, vars, depth-1), ir.C(0, ir.U8))
		return ir.Sel(cond, genExpr(rng, vars, depth-1), genExpr(rng, vars, depth-1))
	case 2:
		t := []*ir.Type{ir.U4, ir.U8, ir.U16}[rng.Intn(3)]
		return ir.Cast(genExpr(rng, vars, depth-1), t)
	default:
		ops := []ir.BinOp{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
			ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr,
			ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe}
		op := ops[rng.Intn(len(ops))]
		l := genExpr(rng, vars, depth-1)
		r := genExpr(rng, vars, depth-1)
		if op.IsLogical() || l.Type().IsBool() != r.Type().IsBool() {
			// Normalize operand kinds for logical ops.
			l = ir.Cast(l, ir.U8)
			r = ir.Cast(r, ir.U8)
		}
		if op == ir.OpShl || op == ir.OpShr {
			r = ir.C(rng.Int63n(8), ir.U4)
		}
		return ir.Bin(op, l, r)
	}
}

// evalIn evaluates an expression in a tiny single-function program.
func evalIn(t *testing.T, e ir.Expr, vars []*ir.Var, vals []int64) int64 {
	t.Helper()
	p := ir.NewProgram("prop")
	f := ir.NewFunc("main", ir.Int(64))
	f.Locals = append(f.Locals, vars...)
	var init []ir.Stmt
	for i, v := range vars {
		init = append(init, ir.Assign(ir.V(v), ir.C(vals[i], v.Type)))
	}
	f.Body.Add(init...)
	f.Body.Add(&ir.ReturnStmt{Val: ir.Cast(e, ir.Int(64))})
	p.AddFunc(f)
	if err := ir.Validate(p); err != nil {
		t.Fatalf("generated program invalid: %v\n%s", err, ir.Print(p))
	}
	env := interp.NewEnv(p)
	got, err := interp.New(p).RunMain(env)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	return got
}

// Property: folding an expression tree never changes its value, for any
// variable assignment.
func TestFoldExprPreservesValue(t *testing.T) {
	rng := rand.New(rand.NewSource(20260611))
	mkVars := func() []*ir.Var {
		return []*ir.Var{
			{Name: "v0", Type: ir.U8},
			{Name: "v1", Type: ir.U4},
			{Name: "v2", Type: ir.Int(8)},
		}
	}
	prop := func(x0, x1, x2 int64) bool {
		vars := mkVars()
		vals := []int64{x0, x1, x2}
		e := genExpr(rng, vars, 4)
		// Clone, then fold bottom-up exactly like the pass does.
		folded := ir.RewriteExpr(ir.CloneExpr(e, nil), transform.FoldExpr)
		// Folding must preserve the result type exactly.
		if !folded.Type().Equal(e.Type()) {
			t.Logf("type changed: %s -> %s for %s",
				e.Type(), folded.Type(), ir.PrintExpr(e))
			return false
		}
		a := evalIn(t, e, mkVars2(vars), vals)
		b := evalIn(t, folded, mkVars2(vars), vals)
		if a != b {
			t.Logf("expr: %s\nfolded: %s\nvals: %v -> %d vs %d",
				ir.PrintExpr(e), ir.PrintExpr(folded), vals, a, b)
		}
		return a == b
	}
	cfg := &quick.Config{MaxCount: 800, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// mkVars2 returns the same Var objects (the expression references them by
// identity; evalIn needs the identical slice registered as locals).
func mkVars2(vars []*ir.Var) []*ir.Var { return vars }

// Property: folding is idempotent — folding a folded tree changes nothing.
func TestFoldExprIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	vars := []*ir.Var{
		{Name: "v0", Type: ir.U8},
		{Name: "v1", Type: ir.U16},
	}
	for i := 0; i < 500; i++ {
		e := genExpr(rng, vars, 4)
		once := ir.RewriteExpr(ir.CloneExpr(e, nil), transform.FoldExpr)
		s1 := ir.PrintExpr(once)
		twice := ir.RewriteExpr(once, transform.FoldExpr)
		s2 := ir.PrintExpr(twice)
		if s1 != s2 {
			t.Fatalf("folding not idempotent:\n first: %s\nsecond: %s", s1, s2)
		}
	}
}
