package transform

import (
	"fmt"

	"sparkgo/internal/ir"
)

// Inline replaces calls with the callee's body (paper Fig 12). Callees must
// be non-recursive (ir.Validate guarantees this) and must use `return` only
// in tail position — the structured-control subset every listing in the
// paper satisfies.
//
// Inline(nil) inlines every call in every function, bottom-up, so after the
// pass the program is call-free (callees are kept; DCE of unreachable
// functions is the synthesizer's decision via DropUncalledFuncs).
// Inline([]string{"f","g"}) restricts inlining to call sites inside the
// named functions.
func Inline(within []string) Pass {
	name := "inline"
	if within != nil {
		name = fmt.Sprintf("inline(%v)", within)
	}
	return PassFunc{PassName: name, Fn: func(p *ir.Program) (bool, error) {
		allowed := map[string]bool{}
		for _, n := range within {
			allowed[n] = true
		}
		changed := false
		for _, f := range p.Funcs {
			if within != nil && !allowed[f.Name] {
				continue
			}
			ch, err := inlineCallsIn(p, f)
			if err != nil {
				return changed, err
			}
			changed = changed || ch
		}
		return changed, nil
	}}
}

// inlineCallsIn repeatedly inlines statement-level calls in f until none
// remain (callee bodies may themselves contain calls).
func inlineCallsIn(p *ir.Program, f *ir.Func) (bool, error) {
	changed := false
	for round := 0; ; round++ {
		if round > 1000 {
			return changed, fmt.Errorf("inline: runaway expansion in %s", f.Name)
		}
		any := false
		var err error
		ir.RewriteBlocks(f.Body, func(stmts []ir.Stmt) []ir.Stmt {
			if err != nil {
				return stmts
			}
			var out []ir.Stmt
			for _, s := range stmts {
				call, dst := stmtCall(s)
				if call == nil {
					out = append(out, s)
					continue
				}
				exp, e := expandCall(f, call, dst)
				if e != nil {
					err = e
					return stmts
				}
				out = append(out, exp...)
				any = true
			}
			return out
		})
		if err != nil {
			return changed, err
		}
		if !any {
			return changed, nil
		}
		changed = true
	}
}

// stmtCall extracts the call and optional destination from a statement, if
// it is a call statement.
func stmtCall(s ir.Stmt) (*ir.CallExpr, ir.LValue) {
	switch x := s.(type) {
	case *ir.AssignStmt:
		if c, ok := x.RHS.(*ir.CallExpr); ok {
			return c, x.LHS
		}
	case *ir.ExprStmt:
		return x.Call, nil
	}
	return nil, nil
}

// expandCall produces the statement sequence replacing "dst = call(...)":
// parameter copies, the renamed callee body, and the result copy.
func expandCall(caller *ir.Func, call *ir.CallExpr, dst ir.LValue) ([]ir.Stmt, error) {
	callee := call.F
	if callee == nil {
		return nil, fmt.Errorf("inline: unresolved call %s", call.Name)
	}
	body, retVal, err := tailReturnBody(callee)
	if err != nil {
		return nil, err
	}
	// Fresh copies of every callee local in the caller.
	subst := map[*ir.Var]*ir.Var{}
	for _, v := range callee.Locals {
		nv := caller.NewTemp(callee.Name+"_"+v.Name, v.Type)
		subst[v] = nv
	}
	var out []ir.Stmt
	for i, prm := range callee.Params {
		out = append(out, ir.Assign(ir.V(subst[prm]), call.Args[i]))
	}
	cloned := ir.CloneBlock(body, subst)
	out = append(out, cloned.Stmts...)
	if dst != nil {
		if retVal == nil {
			return nil, fmt.Errorf("inline: %s used as value but has no return", callee.Name)
		}
		out = append(out, ir.Assign(dst, ir.CloneExpr(retVal, subst)))
	}
	return out, nil
}

// tailReturnBody verifies that callee returns only in tail position and
// yields its body without the trailing return, plus the returned
// expression (nil for void).
func tailReturnBody(callee *ir.Func) (*ir.Block, ir.Expr, error) {
	// No return statement anywhere except possibly the last statement.
	var bad error
	for i, s := range callee.Body.Stmts {
		isLast := i == len(callee.Body.Stmts)-1
		ir.WalkStmts(ir.NewBlock(s), func(st ir.Stmt) bool {
			if _, ok := st.(*ir.ReturnStmt); ok {
				if !(isLast && st == s) {
					bad = fmt.Errorf("inline: %s has a non-tail return", callee.Name)
				}
			}
			return true
		})
	}
	if bad != nil {
		return nil, nil, bad
	}
	n := len(callee.Body.Stmts)
	if n > 0 {
		if ret, ok := callee.Body.Stmts[n-1].(*ir.ReturnStmt); ok {
			return ir.NewBlock(callee.Body.Stmts[:n-1]...), ret.Val, nil
		}
	}
	if !callee.Ret.IsVoid() {
		return nil, nil, fmt.Errorf("inline: %s does not end with a return", callee.Name)
	}
	return callee.Body, nil, nil
}

// DropUncalledFuncs removes every function that is not (transitively)
// called from the top-level function. After full inlining this leaves only
// "main", matching the paper's flow where the whole block becomes one
// behavioral body before scheduling.
func DropUncalledFuncs() Pass {
	return PassFunc{PassName: "drop-uncalled", Fn: func(p *ir.Program) (bool, error) {
		root := p.Main()
		if root == nil {
			return false, nil
		}
		reach := map[*ir.Func]bool{root: true}
		var visit func(f *ir.Func)
		visit = func(f *ir.Func) {
			ir.WalkStmts(f.Body, func(s ir.Stmt) bool {
				ir.WalkStmtExprs(s, func(e ir.Expr) {
					ir.WalkExpr(e, func(x ir.Expr) bool {
						if c, ok := x.(*ir.CallExpr); ok && c.F != nil && !reach[c.F] {
							reach[c.F] = true
							visit(c.F)
						}
						return true
					})
				})
				return true
			})
		}
		visit(root)
		var kept []*ir.Func
		for _, f := range p.Funcs {
			if reach[f] {
				kept = append(kept, f)
			}
		}
		changed := len(kept) != len(p.Funcs)
		p.Funcs = kept
		return changed, nil
	}}
}
