package transform

import (
	"sparkgo/internal/ir"
)

// NormalizeWhile implements the source-level transformation the paper
// proposes as future work (§7, Fig 16): rewriting the "succinct and
// natural" data-dependent while-form of a block into the synthesizable
// counted-loop form of Fig 10.
//
// The pattern recognized is a while loop driven by a monotonically
// increasing cursor variable X:
//
//	X = lo;                       // constant initialization just before
//	#bound N
//	while (X <= hi) {             // hi a constant
//	    ... body using X ...
//	    X += step;                // sole write to X, at body top level
//	}
//
// which becomes the guarded sweep (the Fig 10 shape the rest of the
// pipeline knows how to parallelize):
//
//	X = lo;
//	for (i = lo; i <= hi; i = i + 1) {
//	    if (i == X) { ... body with reads of X replaced by i ... }
//	}
//
// Correctness requires that the body executes at most once per cursor
// value, i.e. the step is >= 1 whenever the loop continues. Two proofs are
// accepted:
//
//  1. syntactic: the step expression is a positive constant or a
//     non-wrapping "positive-constant + unsigned" sum;
//  2. determinism + the designer's #bound assertion: the step is a
//     variable whose defining computation depends only on the cursor and
//     on state the loop body never writes. Re-executing the body at an
//     unchanged cursor would then recompute the same step; were the step
//     zero, the loop would spin forever on that cursor, contradicting the
//     asserted bound — so on every continuing iteration the step is
//     positive. (This is exactly the ILD argument: the length of the
//     instruction at byte X depends only on X and the read-only
//     instruction buffer, and instruction lengths are at least one byte.)
func NormalizeWhile() Pass {
	return PassFunc{PassName: "normalize-while", Fn: func(p *ir.Program) (bool, error) {
		changed := false
		for _, f := range p.Funcs {
			ir.RewriteBlocks(f.Body, func(stmts []ir.Stmt) []ir.Stmt {
				var out []ir.Stmt
				for i := 0; i < len(stmts); i++ {
					s := stmts[i]
					w, ok := s.(*ir.WhileStmt)
					if !ok || len(out) == 0 {
						out = append(out, s)
						continue
					}
					initAssign, ok := out[len(out)-1].(*ir.AssignStmt)
					if !ok {
						out = append(out, s)
						continue
					}
					forLoop, ok := normalizeOne(p, f, w, initAssign)
					if !ok {
						out = append(out, s)
						continue
					}
					changed = true
					out = append(out, forLoop)
				}
				return out
			})
		}
		return changed, nil
	}}
}

// normalizeOne attempts the rewrite for one while loop preceded by the
// given assignment, returning the replacement for the while statement.
func normalizeOne(p *ir.Program, f *ir.Func, w *ir.WhileStmt, initAssign *ir.AssignStmt) (ir.Stmt, bool) {
	// Initialization: "X = lo" with lo constant.
	xv, ok := initAssign.LHS.(*ir.VarExpr)
	if !ok {
		return nil, false
	}
	x := xv.V
	lo, ok := initAssign.RHS.(*ir.ConstExpr)
	if !ok {
		return nil, false
	}
	// Condition: "X <= hi" or "X < hi" with hi constant.
	cond, ok := w.Cond.(*ir.BinExpr)
	if !ok {
		return nil, false
	}
	cl, lok := cond.L.(*ir.VarExpr)
	hi, rok := cond.R.(*ir.ConstExpr)
	if !lok || !rok || cl.V != x {
		return nil, false
	}
	var hiVal int64
	switch cond.Op {
	case ir.OpLe:
		hiVal = hi.Val
	case ir.OpLt:
		hiVal = hi.Val - 1
	default:
		return nil, false
	}
	if hiVal < lo.Val || lo.Val < 0 {
		return nil, false
	}
	if !stepAlwaysPositive(p, w, x) {
		return nil, false
	}
	// Build the sweep.
	i := f.NewTemp("sweep_i", x.Type)
	guard := ir.Bin(ir.OpEq, ir.V(i), ir.V(x))
	body := ir.CloneBlock(w.Body, nil)
	replaceReadsKeepWrites(body, x, i)
	forLoop := &ir.ForStmt{
		Init:  ir.Assign(ir.V(i), ir.C(lo.Val, i.Type)),
		Cond:  ir.Bin(ir.OpLe, ir.V(i), ir.C(hiVal, i.Type)),
		Post:  ir.Assign(ir.V(i), ir.Add(ir.V(i), ir.C(1, i.Type))),
		Body:  ir.NewBlock(ir.If(guard, body, nil)),
		Label: w.Label,
	}
	return forLoop, true
}

// stepAlwaysPositive verifies X is written exactly once, at the body's top
// level, as "X = X + step", and that step is provably positive on every
// continuing iteration (see NormalizeWhile's two accepted proofs).
func stepAlwaysPositive(p *ir.Program, w *ir.WhileStmt, x *ir.Var) bool {
	body := w.Body
	writes := 0
	var step ir.Expr
	for _, s := range body.Stmts {
		wr := map[*ir.Var]bool{}
		writtenVars([]ir.Stmt{s}, wr)
		if !wr[x] && !wr[anyGlobalMarker] {
			continue
		}
		if wr[anyGlobalMarker] && x.IsGlobal {
			// A call might write a global cursor: reject.
			if _, isAssignToX := xWrite(s, x); !isAssignToX {
				return false
			}
		}
		if !wr[x] {
			continue
		}
		a, isAssignToX := xWrite(s, x)
		if !isAssignToX {
			return false
		}
		writes++
		rhs := a.RHS
		if c, isCast := rhs.(*ir.CastExpr); isCast {
			rhs = c.X
		}
		bin, ok := rhs.(*ir.BinExpr)
		if !ok || bin.Op != ir.OpAdd {
			return false
		}
		if lr, isV := bin.L.(*ir.VarExpr); isV && lr.V == x {
			step = bin.R
		} else if rr, isV := bin.R.(*ir.VarExpr); isV && rr.V == x {
			step = bin.L
		} else {
			return false
		}
	}
	if writes != 1 || step == nil {
		return false
	}
	if strictlyPositive(step) {
		return true
	}
	if w.Bound > 0 {
		return stepDeterministic(p, body, x, step)
	}
	return false
}

// xWrite returns the top-level assignment if s assigns directly to x.
func xWrite(s ir.Stmt, x *ir.Var) (*ir.AssignStmt, bool) {
	a, ok := s.(*ir.AssignStmt)
	if !ok {
		return nil, false
	}
	lv, ok := a.LHS.(*ir.VarExpr)
	if !ok || lv.V != x {
		return nil, false
	}
	if _, isCall := a.RHS.(*ir.CallExpr); isCall {
		return nil, false
	}
	return a, true
}

// stepDeterministic implements proof (2): the step is a variable defined
// exactly once at body top level, from inputs the body never writes (other
// than the cursor itself). Then re-execution at an unchanged cursor yields
// an unchanged step, so a zero step would loop forever, contradicting the
// #bound assertion.
func stepDeterministic(p *ir.Program, body *ir.Block, x *ir.Var, step ir.Expr) bool {
	sv, ok := step.(*ir.VarExpr)
	if !ok {
		if c, isCast := step.(*ir.CastExpr); isCast {
			sv, ok = c.X.(*ir.VarExpr)
		}
		if !ok {
			return false
		}
	}
	// Everything the body writes (arrays by variable, calls as globals).
	written := map[*ir.Var]bool{}
	writtenVars(body.Stmts, written)
	callMayWrite := written[anyGlobalMarker]

	// Find the defining assignments of the step variable at top level.
	defs := 0
	okDeps := true
	for _, s := range body.Stmts {
		a, isAssign := s.(*ir.AssignStmt)
		if !isAssign {
			continue
		}
		lv, isV := a.LHS.(*ir.VarExpr)
		if !isV || lv.V != sv.V {
			continue
		}
		defs++
		if call, isCall := a.RHS.(*ir.CallExpr); isCall {
			if call.F == nil || funcWritesState(call.F) {
				okDeps = false
				continue
			}
			for _, arg := range call.Args {
				okDeps = okDeps && readsOnly(arg, x, written)
			}
			// Globals the callee reads must not be written by the body.
			for g := range funcReadsGlobals(call.F) {
				if written[g] || (callMayWrite && g.IsGlobal && bodyCallsCanWrite(p, body, g)) {
					okDeps = false
				}
			}
		} else {
			okDeps = okDeps && IsPure(a.RHS) && readsOnly(a.RHS, x, written)
		}
	}
	// The step var itself is written by the body (its def) — that is
	// fine; but it must not be written anywhere else (e.g. in nested
	// statements), which 'defs == countWrites' establishes.
	totalWrites := 0
	ir.WalkStmts(body, func(s ir.Stmt) bool {
		if v := ir.StmtWrites(s); v == sv.V {
			totalWrites++
		}
		return true
	})
	return defs == 1 && totalWrites == 1 && okDeps
}

// readsOnly reports whether e reads nothing but x and variables the body
// never writes.
func readsOnly(e ir.Expr, x *ir.Var, written map[*ir.Var]bool) bool {
	ok := true
	ir.WalkExpr(e, func(n ir.Expr) bool {
		switch v := n.(type) {
		case *ir.VarExpr:
			if v.V != x && written[v.V] {
				ok = false
			}
		case *ir.IndexExpr:
			if v.Arr != x && written[v.Arr] {
				ok = false
			}
		case *ir.CallExpr:
			ok = false
		}
		return ok
	})
	return ok
}

// funcWritesState reports whether f (or anything it calls) writes a global
// variable or global array.
func funcWritesState(f *ir.Func) bool {
	writes := false
	ir.WalkStmts(f.Body, func(s ir.Stmt) bool {
		if a, ok := s.(*ir.AssignStmt); ok {
			switch lhs := a.LHS.(type) {
			case *ir.VarExpr:
				if lhs.V.IsGlobal {
					writes = true
				}
			case *ir.IndexExpr:
				if lhs.Arr.IsGlobal {
					writes = true
				}
			}
			if c, isCall := a.RHS.(*ir.CallExpr); isCall && c.F != nil && funcWritesState(c.F) {
				writes = true
			}
		}
		if e, ok := s.(*ir.ExprStmt); ok && e.Call.F != nil && funcWritesState(e.Call.F) {
			writes = true
		}
		return !writes
	})
	return writes
}

// funcReadsGlobals returns the set of globals f (transitively) reads.
func funcReadsGlobals(f *ir.Func) map[*ir.Var]bool {
	out := map[*ir.Var]bool{}
	var visit func(g *ir.Func)
	seen := map[*ir.Func]bool{}
	visit = func(g *ir.Func) {
		if seen[g] {
			return
		}
		seen[g] = true
		ir.WalkStmts(g.Body, func(s ir.Stmt) bool {
			ir.WalkStmtExprs(s, func(e ir.Expr) {
				ir.WalkExpr(e, func(x ir.Expr) bool {
					switch n := x.(type) {
					case *ir.VarExpr:
						if n.V.IsGlobal {
							out[n.V] = true
						}
					case *ir.IndexExpr:
						if n.Arr.IsGlobal {
							out[n.Arr] = true
						}
					case *ir.CallExpr:
						if n.F != nil {
							visit(n.F)
						}
					}
					return true
				})
			})
			return true
		})
	}
	visit(f)
	return out
}

// bodyCallsCanWrite reports whether any call in the body might write g.
func bodyCallsCanWrite(p *ir.Program, body *ir.Block, g *ir.Var) bool {
	can := false
	ir.WalkStmts(body, func(s ir.Stmt) bool {
		ir.WalkStmtExprs(s, func(e ir.Expr) {
			ir.WalkExpr(e, func(x ir.Expr) bool {
				if c, ok := x.(*ir.CallExpr); ok {
					if c.F == nil || funcWritesState(c.F) {
						can = true
					}
				}
				return true
			})
		})
		return !can
	})
	return can
}

// strictlyPositive conservatively proves an expression is always >= 1:
// a positive constant, or a non-wrapping sum of a positive constant and an
// unsigned value, or a widening cast of such.
func strictlyPositive(e ir.Expr) bool {
	switch x := e.(type) {
	case *ir.ConstExpr:
		return x.Val >= 1
	case *ir.CastExpr:
		if x.Typ.IsInt() && x.X.Type().IsScalar() && x.Typ.Bits >= x.X.Type().Width() {
			return strictlyPositive(x.X)
		}
		return false
	case *ir.BinExpr:
		if x.Op != ir.OpAdd {
			return false
		}
		unsignedNoWrap := func(a, b ir.Expr) bool {
			ca, ok := a.(*ir.ConstExpr)
			if !ok || ca.Val < 1 {
				return false
			}
			bt := b.Type()
			if bt.IsBool() {
				bt = ir.U1
			}
			if !bt.IsInt() || bt.Signed {
				return false
			}
			// a + b >= 1 without wrapping requires the result to
			// accommodate max(b) + a.
			return x.Typ.IsInt() && !x.Typ.Signed &&
				x.Typ.Bits > bt.Bits && ca.Val <= x.Typ.MaxValue()-bt.MaxValue()
		}
		return unsignedNoWrap(x.L, x.R) || unsignedNoWrap(x.R, x.L)
	}
	return false
}

// replaceReadsKeepWrites substitutes reads of x with i throughout the
// block, leaving assignment left-hand sides that target x intact.
func replaceReadsKeepWrites(b *ir.Block, x, i *ir.Var) {
	ir.WalkStmts(b, func(s ir.Stmt) bool {
		if a, ok := s.(*ir.AssignStmt); ok {
			if lv, isV := a.LHS.(*ir.VarExpr); isV && lv.V == x {
				a.RHS = substVar(a.RHS, x, i)
				return true
			}
		}
		ir.RewriteStmtExprs(s, func(e ir.Expr) ir.Expr {
			if v, ok := e.(*ir.VarExpr); ok && v.V == x {
				return ir.V(i)
			}
			return e
		})
		return true
	})
}

func substVar(e ir.Expr, from, to *ir.Var) ir.Expr {
	return ir.RewriteExpr(e, func(x ir.Expr) ir.Expr {
		if v, ok := x.(*ir.VarExpr); ok && v.V == from {
			return ir.V(to)
		}
		return x
	})
}
