package transform

import (
	"sparkgo/internal/ir"
)

// Speculate performs the paper's speculation transformation (Fig 11): every
// side-effect-free computation inside a conditional branch is hoisted above
// the conditional into a fresh temporary, executing unconditionally
// ("speculatively"); the branch retains only the copy that commits the
// speculated value. Nested conditionals are processed innermost-first, so
// their (hoisted) condition computations bubble all the way up — the
// paper's early condition execution. The result is the Fig 11 shape:
//
//	all data calculation up-front, speculatively
//	followed by a pure selection (control) structure
//
// which the scheduler maps to parallel functional units feeding
// multiplexers.
//
// Safety argument. A hoisted statement "v = RHS" becomes "t = RHS'" above
// the conditional plus the commit copy "v = t" in its original place, with
// t fresh. Because the commit stays in place and in order, every statement
// remaining in the branch observes exactly the values it did before — no
// in-branch rewriting is needed. RHS' renames reads of previously-hoisted
// variables to their temporaries (pre-branch, the commits have not executed
// yet). A statement may hoist only if RHS' is pure (no calls — run Inline
// first) and reads nothing "dirty": a variable whose latest in-branch write
// could not be hoisted (array stores, nested-conditional writes, loop
// writes, call effects). Such reads are only meaningful after the
// conditional write executes, so the computation must stay conditional.
func Speculate() Pass {
	return PassFunc{PassName: "speculate", Fn: func(p *ir.Program) (bool, error) {
		changed := false
		for _, f := range p.Funcs {
			sp := &speculator{fn: f}
			if sp.block(f.Body) {
				changed = true
			}
		}
		return changed, nil
	}}
}

type speculator struct {
	fn *ir.Func
}

// block processes a statement list, returning whether anything changed.
// Hoisted code lands immediately before the conditional it came from.
func (sp *speculator) block(b *ir.Block) bool {
	changed := false
	var out []ir.Stmt
	for _, s := range b.Stmts {
		ifs, ok := s.(*ir.IfStmt)
		if !ok {
			switch x := s.(type) {
			case *ir.ForStmt:
				changed = sp.block(x.Body) || changed
			case *ir.WhileStmt:
				changed = sp.block(x.Body) || changed
			case *ir.Block:
				changed = sp.block(x) || changed
			}
			out = append(out, s)
			continue
		}
		hoisted, ch := sp.speculateIf(ifs)
		changed = changed || ch
		out = append(out, hoisted...)
		out = append(out, ifs)
	}
	b.Stmts = out
	return changed
}

// speculateIf hoists computation out of one conditional (after processing
// nested conditionals), returning the statements to place before it.
func (sp *speculator) speculateIf(ifs *ir.IfStmt) ([]ir.Stmt, bool) {
	changed := false
	// Innermost-first: speculate inside the branches, so nested hoisted
	// code sits at branch top level where this pass can lift it further.
	if sp.block(ifs.Then) {
		changed = true
	}
	if ifs.Else != nil && sp.block(ifs.Else) {
		changed = true
	}

	var hoisted []ir.Stmt
	h, ch := sp.hoistBranch(ifs.Then)
	hoisted = append(hoisted, h...)
	changed = changed || ch
	if ifs.Else != nil {
		h, ch = sp.hoistBranch(ifs.Else)
		hoisted = append(hoisted, h...)
		changed = changed || ch
	}
	return hoisted, changed
}

// hoistBranch lifts hoistable assignments out of one branch (see the
// package-level safety argument on Speculate).
func (sp *speculator) hoistBranch(branch *ir.Block) ([]ir.Stmt, bool) {
	changed := false
	var hoisted []ir.Stmt
	rename := map[*ir.Var]*ir.Var{} // var -> its speculation temp
	dirty := map[*ir.Var]bool{}     // vars with a non-hoisted in-branch write

	applyRename := func(e ir.Expr) ir.Expr {
		return ir.RewriteExpr(e, func(x ir.Expr) ir.Expr {
			if v, ok := x.(*ir.VarExpr); ok {
				if t, ok := rename[v.V]; ok {
					return ir.V(t)
				}
			}
			return x
		})
	}
	readsDirty := func(e ir.Expr) bool {
		found := false
		ir.WalkExpr(e, func(x ir.Expr) bool {
			switch n := x.(type) {
			case *ir.VarExpr:
				if dirty[n.V] {
					found = true
				}
			case *ir.IndexExpr:
				if dirty[n.Arr] {
					found = true
				}
			}
			return !found
		})
		return found
	}
	markDirty := func(s ir.Stmt) {
		w := map[*ir.Var]bool{}
		writtenVars([]ir.Stmt{s}, w)
		if w[anyGlobalMarker] {
			// Calls may write any global.
			delete(w, anyGlobalMarker)
			for v := range rename {
				if v.IsGlobal {
					delete(rename, v)
					dirty[v] = true
				}
			}
			dirtyAllGlobals(dirty, sp.fn)
		}
		for v := range w {
			dirty[v] = true
			delete(rename, v)
		}
	}

	for i, s := range branch.Stmts {
		a, isAssign := s.(*ir.AssignStmt)
		if !isAssign {
			markDirty(s)
			continue
		}
		lhsVar, isVarDst := a.LHS.(*ir.VarExpr)
		if !isVarDst {
			markDirty(s) // array store stays conditional
			continue
		}
		if _, isCall := a.RHS.(*ir.CallExpr); isCall {
			markDirty(s)
			continue
		}
		// A bare commit copy "v = t" needs no new temp.
		if src, isCopy := a.RHS.(*ir.VarExpr); isCopy {
			if t, ok := rename[src.V]; ok {
				a.RHS = ir.V(t)
			}
			if !dirty[src.V] {
				// v now equals a pre-branch-computable value.
				rename[lhsVar.V] = renameTarget(rename, src.V)
				delete(dirty, lhsVar.V)
			} else {
				dirty[lhsVar.V] = true
				delete(rename, lhsVar.V)
			}
			continue
		}
		rhs := applyRename(a.RHS)
		if !IsPure(rhs) || readsDirty(rhs) {
			a.RHS = rhs
			dirty[lhsVar.V] = true
			delete(rename, lhsVar.V)
			continue
		}
		// Hoist: t = RHS' above; commit copy v = t in place.
		t := sp.fn.NewTemp("spec_"+lhsVar.V.Name, lhsVar.V.Type)
		hoisted = append(hoisted, ir.AssignRaw(ir.V(t), rhs))
		branch.Stmts[i] = ir.Assign(ir.V(lhsVar.V), ir.V(t))
		rename[lhsVar.V] = t
		delete(dirty, lhsVar.V)
		changed = true
	}
	return hoisted, changed
}

// renameTarget resolves the temp a copy source refers to: if src itself has
// a rename entry use that temp, otherwise src is readable pre-branch as-is.
func renameTarget(rename map[*ir.Var]*ir.Var, src *ir.Var) *ir.Var {
	if t, ok := rename[src]; ok {
		return t
	}
	return src
}

func dirtyAllGlobals(dirty map[*ir.Var]bool, f *ir.Func) {
	// Mark every global referenced in the function dirty. (We cannot
	// enumerate program globals from here without threading the program;
	// referenced globals are the only ones that matter for reads.)
	ir.WalkStmts(f.Body, func(s ir.Stmt) bool {
		ir.WalkStmtExprs(s, func(e ir.Expr) {
			ir.WalkExpr(e, func(x ir.Expr) bool {
				switch n := x.(type) {
				case *ir.VarExpr:
					if n.V.IsGlobal {
						dirty[n.V] = true
					}
				case *ir.IndexExpr:
					if n.Arr.IsGlobal {
						dirty[n.Arr] = true
					}
				}
				return true
			})
		})
		return true
	})
}
