// Package transform implements the coordinated source-level transformations
// of the Spark paper (Gupta et al., DAC 2002, §3 and §6):
//
//   - function inlining (Fig 12)
//   - speculation: hoisting computation out of conditional branches into
//     fresh temporaries, leaving a pure selection tree (Fig 11)
//   - full and partial loop unrolling (Figs 2, 13)
//   - constant propagation, including loop-index elimination after full
//     unrolling (Figs 3, 14), with branch folding
//   - copy propagation, dead-code elimination, and common-subexpression
//     elimination (the supporting "standard compiler transformations")
//   - while→for normalization of data-dependent loops over a monotone
//     index (the paper's Fig 16 "future work" source-level transformation)
//
// All passes preserve program semantics as defined by package interp; the
// test suite checks this with randomized equivalence testing after every
// pass on every workload.
package transform

import (
	"sparkgo/internal/ir"
)

// Pass is one rewriting step over a whole program.
type Pass interface {
	// Name is the identifier used by synthesis scripts and reports.
	Name() string
	// Run mutates p, reporting whether anything changed.
	Run(p *ir.Program) (changed bool, err error)
}

// PassFunc adapts a function to the Pass interface.
type PassFunc struct {
	PassName string
	Fn       func(p *ir.Program) (bool, error)
}

// Name implements Pass.
func (pf PassFunc) Name() string { return pf.PassName }

// Run implements Pass.
func (pf PassFunc) Run(p *ir.Program) (bool, error) { return pf.Fn(p) }

// IsPure reports whether evaluating e has no side effects and no
// dependence on anything but variable/array state: true for everything
// except calls. Pure expressions may be duplicated, reordered past
// non-conflicting writes, and speculated.
func IsPure(e ir.Expr) bool {
	pure := true
	ir.WalkExpr(e, func(x ir.Expr) bool {
		if _, ok := x.(*ir.CallExpr); ok {
			pure = false
			return false
		}
		return true
	})
	return pure
}

// writtenVars collects every variable written anywhere in the statement
// tree (array stores report the array variable), including loop init/post.
func writtenVars(stmts []ir.Stmt, into map[*ir.Var]bool) {
	for _, s := range stmts {
		switch x := s.(type) {
		case *ir.AssignStmt:
			if v := ir.StmtWrites(s); v != nil {
				into[v] = true
			}
		case *ir.IfStmt:
			writtenVars(x.Then.Stmts, into)
			if x.Else != nil {
				writtenVars(x.Else.Stmts, into)
			}
		case *ir.ForStmt:
			if x.Init != nil {
				writtenVars([]ir.Stmt{x.Init}, into)
			}
			if x.Post != nil {
				writtenVars([]ir.Stmt{x.Post}, into)
			}
			writtenVars(x.Body.Stmts, into)
		case *ir.WhileStmt:
			writtenVars(x.Body.Stmts, into)
		case *ir.Block:
			writtenVars(x.Stmts, into)
		case *ir.ExprStmt:
			// A call may write any global.
			_ = x
			into[anyGlobalMarker] = true
		case *ir.ReturnStmt:
		}
		// Calls in assignment RHS also clobber globals.
		if a, ok := s.(*ir.AssignStmt); ok {
			if _, isCall := a.RHS.(*ir.CallExpr); isCall {
				into[anyGlobalMarker] = true
			}
		}
	}
}

// anyGlobalMarker is a sentinel: its presence in a written-set means "some
// call may have written any global".
var anyGlobalMarker = &ir.Var{Name: "<any-global>"}
