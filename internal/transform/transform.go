// Package transform implements the coordinated source-level transformations
// of the Spark paper (Gupta et al., DAC 2002, §3 and §6):
//
//   - function inlining (Fig 12)
//   - speculation: hoisting computation out of conditional branches into
//     fresh temporaries, leaving a pure selection tree (Fig 11)
//   - full and partial loop unrolling (Figs 2, 13)
//   - constant propagation, including loop-index elimination after full
//     unrolling (Figs 3, 14), with branch folding
//   - copy propagation, dead-code elimination, and common-subexpression
//     elimination (the supporting "standard compiler transformations")
//   - while→for normalization of data-dependent loops over a monotone
//     index (the paper's Fig 16 "future work" source-level transformation)
//
// All passes preserve program semantics as defined by package interp; the
// test suite checks this with randomized equivalence testing after every
// pass on every workload.
package transform

import (
	"fmt"

	"sparkgo/internal/ir"
)

// Pass is one rewriting step over a whole program.
type Pass interface {
	// Name is the identifier used by synthesis scripts and reports.
	Name() string
	// Run mutates p, reporting whether anything changed.
	Run(p *ir.Program) (changed bool, err error)
}

// PassFunc adapts a function to the Pass interface.
type PassFunc struct {
	PassName string
	Fn       func(p *ir.Program) (bool, error)
}

// Name implements Pass.
func (pf PassFunc) Name() string { return pf.PassName }

// Run implements Pass.
func (pf PassFunc) Run(p *ir.Program) (bool, error) { return pf.Fn(p) }

// Pipeline applies passes in order, optionally repeating the whole sequence
// until no pass reports a change (fixed point).
type Pipeline struct {
	Passes []Pass
	// MaxRounds bounds fixed-point iteration; 1 means a single pass
	// through the sequence (no iteration). Zero defaults to 1.
	MaxRounds int
	// Observer, when non-nil, is called after every pass execution with
	// the pass name and whether it changed the program. The synthesizer
	// uses this to snapshot per-stage metrics (DESIGN.md experiments).
	Observer func(pass string, changed bool, p *ir.Program)
}

// Run executes the pipeline on p.
func (pl *Pipeline) Run(p *ir.Program) error {
	rounds := pl.MaxRounds
	if rounds <= 0 {
		rounds = 1
	}
	for round := 0; round < rounds; round++ {
		any := false
		for _, pass := range pl.Passes {
			changed, err := pass.Run(p)
			if err != nil {
				return fmt.Errorf("pass %s: %w", pass.Name(), err)
			}
			if pl.Observer != nil {
				pl.Observer(pass.Name(), changed, p)
			}
			any = any || changed
		}
		if !any {
			return nil
		}
	}
	return nil
}

// IsPure reports whether evaluating e has no side effects and no
// dependence on anything but variable/array state: true for everything
// except calls. Pure expressions may be duplicated, reordered past
// non-conflicting writes, and speculated.
func IsPure(e ir.Expr) bool {
	pure := true
	ir.WalkExpr(e, func(x ir.Expr) bool {
		if _, ok := x.(*ir.CallExpr); ok {
			pure = false
			return false
		}
		return true
	})
	return pure
}

// writtenVars collects every variable written anywhere in the statement
// tree (array stores report the array variable), including loop init/post.
func writtenVars(stmts []ir.Stmt, into map[*ir.Var]bool) {
	for _, s := range stmts {
		switch x := s.(type) {
		case *ir.AssignStmt:
			if v := ir.StmtWrites(s); v != nil {
				into[v] = true
			}
		case *ir.IfStmt:
			writtenVars(x.Then.Stmts, into)
			if x.Else != nil {
				writtenVars(x.Else.Stmts, into)
			}
		case *ir.ForStmt:
			if x.Init != nil {
				writtenVars([]ir.Stmt{x.Init}, into)
			}
			if x.Post != nil {
				writtenVars([]ir.Stmt{x.Post}, into)
			}
			writtenVars(x.Body.Stmts, into)
		case *ir.WhileStmt:
			writtenVars(x.Body.Stmts, into)
		case *ir.Block:
			writtenVars(x.Stmts, into)
		case *ir.ExprStmt:
			// A call may write any global.
			_ = x
			into[anyGlobalMarker] = true
		case *ir.ReturnStmt:
		}
		// Calls in assignment RHS also clobber globals.
		if a, ok := s.(*ir.AssignStmt); ok {
			if _, isCall := a.RHS.(*ir.CallExpr); isCall {
				into[anyGlobalMarker] = true
			}
		}
	}
}

// anyGlobalMarker is a sentinel: its presence in a written-set means "some
// call may have written any global".
var anyGlobalMarker = &ir.Var{Name: "<any-global>"}
