package transform_test

import (
	"strings"
	"testing"

	"sparkgo/internal/ir"
	"sparkgo/internal/parser"
	"sparkgo/internal/pass"
	"sparkgo/internal/testutil"
	"sparkgo/internal/transform"
)

// samplePrograms is a corpus of behavioral descriptions exercising every
// statement form; each transformation must preserve the semantics of all
// of them.
var samplePrograms = map[string]string{
	"straightline": `
uint8 a;
uint8 b;
uint8 out;
void main() {
  uint8 t;
  t = a + b;
  out = t * 2 - a;
}
`,
	"conditional": `
uint8 a;
uint8 b;
uint8 out;
void main() {
  uint8 t;
  if (a > b) {
    t = a - b;
  } else {
    t = b - a;
  }
  out = t;
}
`,
	"nested-conditional": `
uint8 a;
uint8 b;
uint8 c;
uint8 out;
void main() {
  uint8 t;
  t = 0;
  if (a > 10) {
    t = a + 1;
    if (b > 20) {
      t = t + b;
      if (c > 30) {
        t = t + c;
      }
    } else {
      t = t - b;
    }
  }
  out = t;
}
`,
	"loop-accumulate": `
uint8 data[8];
uint16 sum;
void main() {
  uint8 i;
  sum = 0;
  for (i = 0; i < 8; i++) {
    sum += data[i];
  }
}
`,
	"loop-conditional-body": `
uint8 data[8];
uint8 count;
void main() {
  uint8 i;
  count = 0;
  for (i = 0; i < 8; i++) {
    if (data[i] > 128) {
      count += 1;
    }
  }
}
`,
	"calls": `
uint8 x;
uint8 out;
uint8 double_it(uint8 v) {
  return v + v;
}
uint8 clamp(uint8 v) {
  uint8 r;
  r = v;
  if (v > 100) {
    r = 100;
  }
  return r;
}
void main() {
  uint8 t;
  t = double_it(x);
  out = clamp(t);
}
`,
	"array-store-in-branch": `
uint8 in[4];
uint8 out[4];
uint8 mode;
void main() {
  uint8 i;
  for (i = 0; i < 4; i++) {
    if (mode > 3) {
      out[i] = in[i] + 1;
    } else {
      out[i] = in[i] - 1;
    }
  }
}
`,
	"bounded-while": `
uint8 limit;
uint8 steps;
void main() {
  uint8 x;
  x = 0;
  steps = 0;
  #bound 16
  while (x < 16) {
    x = x + 1 + (limit & 1);
    steps += 1;
  }
}
`,
	"wide-arith": `
uint32 a;
uint32 b;
uint32 out;
void main() {
  out = (a * 3 + b / 2) ^ (a << 4) | (b >> 3);
}
`,
	"dead-code-rich": `
uint8 a;
uint8 out;
void main() {
  uint8 unused;
  uint8 t;
  unused = a * 7;
  t = a + 1;
  t = a + 2;
  out = t;
}
`,
}

const equivTrials = 60

// checkPass applies the pass to each corpus program and requires both
// structural validity and behavioral equivalence.
func checkPass(t *testing.T, pass transform.Pass) {
	t.Helper()
	for name, src := range samplePrograms {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			orig, err := parser.Parse(name, src)
			if err != nil {
				t.Fatal(err)
			}
			work := ir.CloneProgram(orig)
			if _, err := pass.Run(work); err != nil {
				t.Fatalf("pass failed: %v", err)
			}
			if err := ir.Validate(work); err != nil {
				t.Fatalf("pass produced invalid IR: %v\n%s", err, ir.Print(work))
			}
			if err := testutil.Equivalent(orig, work, equivTrials, 42); err != nil {
				t.Fatalf("pass changed semantics: %v\n--- original ---\n%s\n--- transformed ---\n%s",
					err, ir.Print(orig), ir.Print(work))
			}
		})
	}
}

func TestConstFoldPreservesSemantics(t *testing.T) { checkPass(t, transform.ConstFold()) }
func TestConstPropPreservesSemantics(t *testing.T) { checkPass(t, transform.ConstProp()) }
func TestCopyPropPreservesSemantics(t *testing.T)  { checkPass(t, transform.CopyProp()) }
func TestDCEPreservesSemantics(t *testing.T)       { checkPass(t, transform.DCE()) }
func TestInlinePreservesSemantics(t *testing.T)    { checkPass(t, transform.Inline(nil)) }
func TestUnrollPreservesSemantics(t *testing.T)    { checkPass(t, transform.UnrollFull(nil, 0)) }
func TestSpeculatePreservesSemantics(t *testing.T) { checkPass(t, transform.Speculate()) }
func TestCSEPreservesSemantics(t *testing.T)       { checkPass(t, transform.CSE()) }
func TestNormalizeWhilePreservesSemantics(t *testing.T) {
	checkPass(t, transform.NormalizeWhile())
}

// The paper's coordinated pipeline applied in sequence must also preserve
// semantics on every corpus program.
func TestFullPipelinePreservesSemantics(t *testing.T) {
	for name, src := range samplePrograms {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			orig, err := parser.Parse(name, src)
			if err != nil {
				t.Fatal(err)
			}
			work := ir.CloneProgram(orig)
			pl := &pass.Pipeline{
				Passes: []transform.Pass{
					transform.NormalizeWhile(),
					transform.Inline(nil),
					transform.DropUncalledFuncs(),
					transform.Speculate(),
					transform.UnrollFull(nil, 0),
					transform.ConstProp(),
					transform.ConstFold(),
					transform.CopyProp(),
					transform.CSE(),
					transform.DCE(),
				},
				MaxRounds: 4,
			}
			if err := pl.Run(work); err != nil {
				t.Fatal(err)
			}
			if err := ir.Validate(work); err != nil {
				t.Fatalf("pipeline produced invalid IR: %v\n%s", err, ir.Print(work))
			}
			if err := testutil.Equivalent(orig, work, equivTrials, 99); err != nil {
				t.Fatalf("pipeline changed semantics: %v\n--- original ---\n%s\n--- transformed ---\n%s",
					err, ir.Print(orig), ir.Print(work))
			}
		})
	}
}

// --- targeted behavior tests (the shape each paper figure claims) ---

// Fig 2: full unrolling eliminates the loop and replicates the body.
func TestUnrollEliminatesLoop(t *testing.T) {
	p := parser.MustParse("fig2", `
uint8 data[8];
uint16 sum;
void main() {
  uint8 i;
  sum = 0;
  for (i = 0; i < 8; i++) {
    sum += data[i];
  }
}
`)
	if _, err := transform.UnrollFull(nil, 0).Run(p); err != nil {
		t.Fatal(err)
	}
	if n := ir.CountLoops(p.Main()); n != 0 {
		t.Errorf("loops remaining = %d, want 0", n)
	}
	// 8 iterations of "sum += data[i]" plus inits.
	if n := ir.CountStmts(p.Main()); n < 8 {
		t.Errorf("statements = %d, want >= 8 replicas", n)
	}
}

// Fig 3a/14: constant propagation eliminates the unrolled loop index.
func TestConstPropEliminatesLoopIndex(t *testing.T) {
	p := parser.MustParse("fig14", `
uint8 data[8];
uint16 sum;
void main() {
  uint8 i;
  sum = 0;
  for (i = 0; i < 8; i++) {
    sum += data[i];
  }
}
`)
	pl := &pass.Pipeline{Passes: []transform.Pass{
		transform.UnrollFull(nil, 0),
		transform.ConstProp(),
		transform.DCE(),
	}, MaxRounds: 3}
	if err := pl.Run(p); err != nil {
		t.Fatal(err)
	}
	// The index variable must be gone entirely.
	if v := p.Main().Lookup("i"); v != nil {
		t.Errorf("loop index variable survived:\n%s", ir.Print(p))
	}
	// All array accesses must use constant indices.
	ir.WalkStmts(p.Main().Body, func(s ir.Stmt) bool {
		ir.WalkStmtExprs(s, func(e ir.Expr) {
			ir.WalkExpr(e, func(x ir.Expr) bool {
				if ix, ok := x.(*ir.IndexExpr); ok {
					if _, isConst := ix.Index.(*ir.ConstExpr); !isConst {
						t.Errorf("non-constant index survived: %s", ir.PrintExpr(ix))
					}
				}
				return true
			})
		})
		return true
	})
}

// Fig 11: speculation leaves only copies (and nested ifs of copies) in
// conditional branches.
func TestSpeculationLeavesOnlyCopies(t *testing.T) {
	p := parser.MustParse("fig11", `
uint8 b1;
uint8 b2;
uint8 b3;
uint8 out;
void main() {
  uint8 lc1;
  uint8 length;
  lc1 = b1 & 15;
  if (b1 > 128) {
    uint8 lc2;
    lc2 = b2 & 15;
    if (b2 > 128) {
      uint8 lc3;
      lc3 = b3 & 15;
      length = lc1 + lc2 + lc3;
    } else {
      length = lc1 + lc2;
    }
  } else {
    length = lc1;
  }
  out = length;
}
`)
	orig := ir.CloneProgram(p)
	if _, err := transform.Speculate().Run(p); err != nil {
		t.Fatal(err)
	}
	if err := testutil.Equivalent(orig, p, equivTrials, 5); err != nil {
		t.Fatalf("speculation broke semantics: %v\n%s", err, ir.Print(p))
	}
	// Every statement inside every conditional branch must now be either
	// a var-to-var copy or a nested if (of the same shape).
	var checkBranch func(b *ir.Block)
	checkBranch = func(b *ir.Block) {
		for _, s := range b.Stmts {
			switch x := s.(type) {
			case *ir.AssignStmt:
				if _, ok := x.RHS.(*ir.VarExpr); !ok {
					t.Errorf("non-copy survives in branch: %s", ir.PrintStmt(s))
				}
			case *ir.IfStmt:
				checkBranch(x.Then)
				if x.Else != nil {
					checkBranch(x.Else)
				}
			default:
				t.Errorf("unexpected statement in branch: %s", ir.PrintStmt(s))
			}
		}
	}
	ir.WalkStmts(p.Main().Body, func(s ir.Stmt) bool {
		if ifs, ok := s.(*ir.IfStmt); ok {
			checkBranch(ifs.Then)
			if ifs.Else != nil {
				checkBranch(ifs.Else)
			}
			return false
		}
		return true
	})
}

// Fig 12: inlining removes all calls.
func TestInlineRemovesCalls(t *testing.T) {
	p := parser.MustParse("fig12", samplePrograms["calls"])
	if _, err := transform.Inline(nil).Run(p); err != nil {
		t.Fatal(err)
	}
	if n := ir.CountCalls(p.Main()); n != 0 {
		t.Errorf("calls remaining in main = %d, want 0", n)
	}
}

func TestInlineRejectsNonTailReturn(t *testing.T) {
	p := parser.MustParse("bad", `
uint8 out;
uint8 f(uint8 x) {
  if (x > 1) {
    return 1;
  }
  return 0;
}
void main() {
  out = f(out);
}
`)
	if _, err := transform.Inline(nil).Run(p); err == nil {
		t.Error("expected inline error for non-tail return")
	}
}

func TestDCERemovesDeadAssignments(t *testing.T) {
	p := parser.MustParse("dce", samplePrograms["dead-code-rich"])
	if _, err := transform.DCE().Run(p); err != nil {
		t.Fatal(err)
	}
	src := ir.Print(p)
	if strings.Contains(src, "unused") {
		t.Errorf("dead variable survived:\n%s", src)
	}
	if strings.Contains(src, "a + 1") {
		t.Errorf("overwritten assignment survived:\n%s", src)
	}
}

func TestCopyPropRemovesChains(t *testing.T) {
	p := parser.MustParse("cp", `
uint8 a;
uint8 out;
void main() {
  uint8 t1;
  uint8 t2;
  t1 = a;
  t2 = t1;
  out = t2 + 1;
}
`)
	pl := &pass.Pipeline{Passes: []transform.Pass{
		transform.CopyProp(), transform.DCE(),
	}, MaxRounds: 2}
	if err := pl.Run(p); err != nil {
		t.Fatal(err)
	}
	src := ir.Print(p)
	if !strings.Contains(src, "out = a + 1") {
		t.Errorf("copy chain not collapsed:\n%s", src)
	}
}

func TestCSEDeduplicatesExpressions(t *testing.T) {
	p := parser.MustParse("cse", `
uint8 a;
uint8 b;
uint8 x;
uint8 y;
void main() {
  x = (a + b) * 2;
  y = (a + b) * 2;
}
`)
	orig := ir.CloneProgram(p)
	changed, err := transform.CSE().Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Error("CSE found nothing to do")
	}
	if err := testutil.Equivalent(orig, p, equivTrials, 17); err != nil {
		t.Fatal(err)
	}
	// The second assignment must now be a copy.
	second := p.Main().Body.Stmts[1].(*ir.AssignStmt)
	rhs := second.RHS
	if c, ok := rhs.(*ir.CastExpr); ok {
		rhs = c.X
	}
	if _, ok := rhs.(*ir.VarExpr); !ok {
		t.Errorf("second occurrence not replaced by copy: %s", ir.PrintStmt(second))
	}
}

func TestCSERespectsIntermediateWrites(t *testing.T) {
	p := parser.MustParse("cse2", `
uint8 a;
uint8 b;
uint8 x;
uint8 y;
void main() {
  x = a + b;
  a = 0;
  y = a + b;
}
`)
	orig := ir.CloneProgram(p)
	if _, err := transform.CSE().Run(p); err != nil {
		t.Fatal(err)
	}
	if err := testutil.Equivalent(orig, p, equivTrials, 23); err != nil {
		t.Fatalf("CSE ignored the intervening write: %v\n%s", err, ir.Print(p))
	}
}

func TestConstPropFoldsAlwaysTakenBranch(t *testing.T) {
	// The unrolled-ILD pattern: the first "if (1 == NextStartByte)" is
	// statically true and must fold away.
	p := parser.MustParse("fold", `
uint8 out;
void main() {
  uint8 nsb;
  nsb = 1;
  if (nsb == 1) {
    out = 10;
  } else {
    out = 20;
  }
}
`)
	pl := &pass.Pipeline{Passes: []transform.Pass{
		transform.ConstProp(), transform.DCE(),
	}, MaxRounds: 2}
	if err := pl.Run(p); err != nil {
		t.Fatal(err)
	}
	if n := ir.CountIfs(p.Main()); n != 0 {
		t.Errorf("statically-true branch not folded:\n%s", ir.Print(p))
	}
}

func TestUnrollBoundedWhile(t *testing.T) {
	p := parser.MustParse("bw", samplePrograms["bounded-while"])
	orig := ir.CloneProgram(p)
	if _, err := transform.UnrollFull(nil, 0).Run(p); err != nil {
		t.Fatal(err)
	}
	if n := ir.CountLoops(p.Main()); n != 0 {
		t.Errorf("bounded while not unrolled: %d loops remain", n)
	}
	if err := testutil.Equivalent(orig, p, equivTrials, 31); err != nil {
		t.Fatalf("while unrolling broke semantics: %v", err)
	}
}

func TestUnrollRefusesUnboundedWhile(t *testing.T) {
	p := parser.MustParse("ub", `
uint8 x;
void main() {
  while (x < 5) {
    x += 1;
  }
}
`)
	if _, err := transform.UnrollFull(nil, 0).Run(p); err != nil {
		t.Fatal(err)
	}
	if n := ir.CountLoops(p.Main()); n != 1 {
		t.Errorf("unbounded while should be left alone, %d loops remain", n)
	}
}

func TestUnrollByFactorKeepsLoop(t *testing.T) {
	p := parser.MustParse("pby", `
uint8 data[16];
uint16 sum;
void main() {
  uint8 i;
  sum = 0;
  for (i = 0; i < 16; i++) {
    sum += data[i];
  }
}
`)
	orig := ir.CloneProgram(p)
	label := findLoopLabel(t, p)
	if _, err := transform.UnrollBy(label, 4).Run(p); err != nil {
		t.Fatal(err)
	}
	if n := ir.CountLoops(p.Main()); n != 1 {
		t.Errorf("partial unroll must keep the loop, got %d", n)
	}
	if err := testutil.Equivalent(orig, p, equivTrials, 77); err != nil {
		t.Fatalf("partial unroll broke semantics: %v\n%s", err, ir.Print(p))
	}
}

func findLoopLabel(t *testing.T, p *ir.Program) string {
	t.Helper()
	label := ""
	ir.WalkStmts(p.Main().Body, func(s ir.Stmt) bool {
		if f, ok := s.(*ir.ForStmt); ok {
			label = f.Label
		}
		return true
	})
	if label == "" {
		t.Fatal("no loop found")
	}
	return label
}

func TestTripCount(t *testing.T) {
	cases := []struct {
		src  string
		want int
	}{
		{"for (i = 0; i < 8; i++) { sum += 1; }", 8},
		{"for (i = 0; i <= 8; i++) { sum += 1; }", 9},
		{"for (i = 8; i > 0; i--) { sum += 1; }", 8},
		{"for (i = 0; i < 10; i += 3) { sum += 1; }", 4},
		{"for (i = 0; i != 6; i += 2) { sum += 1; }", 3},
	}
	for _, c := range cases {
		p := parser.MustParse("tc", `
uint16 sum;
void main() {
  uint8 i;
  `+c.src+`
}
`)
		var loop *ir.ForStmt
		ir.WalkStmts(p.Main().Body, func(s ir.Stmt) bool {
			if f, ok := s.(*ir.ForStmt); ok {
				loop = f
			}
			return true
		})
		got, ok := transform.TripCount(loop, 4096)
		if !ok || got != c.want {
			t.Errorf("TripCount(%q) = %d,%v want %d", c.src, got, ok, c.want)
		}
	}
}

// Fig 16: the natural while-form normalizes into the for-form sweep.
func TestNormalizeWhileRewritesCursorLoop(t *testing.T) {
	p := parser.MustParse("fig16", `
uint8 buf[8];
uint8 mark[8];
void main() {
  uint8 nsb;
  uint8 ln;
  nsb = 0;
  #bound 8
  while (nsb <= 7) {
    mark[nsb] = 1;
    ln = (buf[nsb] & 3) + 1;
    nsb = nsb + ln;
  }
}
`)
	orig := ir.CloneProgram(p)
	changed, err := transform.NormalizeWhile().Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatalf("normalization did not fire:\n%s", ir.Print(p))
	}
	hasWhile := false
	hasFor := false
	ir.WalkStmts(p.Main().Body, func(s ir.Stmt) bool {
		switch s.(type) {
		case *ir.WhileStmt:
			hasWhile = true
		case *ir.ForStmt:
			hasFor = true
		}
		return true
	})
	if hasWhile || !hasFor {
		t.Errorf("expected while→for: while=%v for=%v", hasWhile, hasFor)
	}
	if err := testutil.Equivalent(orig, p, equivTrials, 55); err != nil {
		t.Fatalf("normalization broke semantics: %v\n%s", err, ir.Print(p))
	}
}

func TestNormalizeWhileRefusesNonMonotone(t *testing.T) {
	// Step may be zero (buf[nsb] & 3 can be 0): syntactic proof fails and
	// there is no #bound, so the loop must be left alone.
	p := parser.MustParse("nm", `
uint8 buf[8];
uint8 mark[8];
void main() {
  uint8 nsb;
  nsb = 0;
  while (nsb <= 7) {
    mark[nsb] = 1;
    nsb = nsb + (buf[nsb] & 3);
  }
}
`)
	changed, err := transform.NormalizeWhile().Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Error("normalization fired without a positivity proof")
	}
}
