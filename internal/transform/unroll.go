package transform

import (
	"fmt"

	"sparkgo/internal/interp"
	"sparkgo/internal/ir"
)

// DefaultMaxUnroll bounds the trip count a loop may have and still be
// fully unrolled (guards against code explosion, paper §3: "loop unrolling
// can lead to code explosion").
const DefaultMaxUnroll = 4096

// UnrollFull fully unrolls loops (paper Figs 2 and 13). For counted loops
// the trip count is derived statically by symbolic execution of the index
// recurrence under bit-accurate semantics; each iteration is replicated as
// "body; post" so that constant propagation can subsequently eliminate the
// index variable (Figs 3a and 14). Bounded while-loops (#bound N) are
// replicated as N nested guards, which preserves exact semantics for any
// loop whose real trip count never exceeds the bound.
//
// labels selects loops by label; nil unrolls every loop in the program.
// maxIter <= 0 uses DefaultMaxUnroll. Loops that cannot be unrolled
// (unknown trip count and no bound, or trip count above the limit) are left
// in place; the scheduler will implement them as FSM states instead (the
// classical-HLS baseline path).
func UnrollFull(labels []string, maxIter int) Pass {
	if maxIter <= 0 {
		maxIter = DefaultMaxUnroll
	}
	want := map[string]bool{}
	for _, l := range labels {
		want[l] = true
	}
	name := "unroll-full"
	if labels != nil {
		name = fmt.Sprintf("unroll-full(%v)", labels)
	}
	return PassFunc{PassName: name, Fn: func(p *ir.Program) (bool, error) {
		changed := false
		for _, f := range p.Funcs {
			// Iterate: unrolling an outer loop may expose (replicate)
			// inner loops that then unroll in the next round.
			for round := 0; round < 64; round++ {
				any := false
				ir.RewriteBlocks(f.Body, func(stmts []ir.Stmt) []ir.Stmt {
					var out []ir.Stmt
					for _, s := range stmts {
						exp, ok := tryUnrollStmt(s, want, labels == nil, maxIter)
						if ok {
							any = true
							out = append(out, exp...)
						} else {
							out = append(out, s)
						}
					}
					return out
				})
				if !any {
					break
				}
				changed = true
			}
		}
		return changed, nil
	}}
}

func tryUnrollStmt(s ir.Stmt, want map[string]bool, all bool, maxIter int) ([]ir.Stmt, bool) {
	switch x := s.(type) {
	case *ir.ForStmt:
		if !all && !want[x.Label] {
			return nil, false
		}
		return unrollFor(x, maxIter)
	case *ir.WhileStmt:
		if !all && !want[x.Label] {
			return nil, false
		}
		if x.Bound <= 0 || x.Bound > maxIter {
			return nil, false
		}
		return []ir.Stmt{unrollWhile(x)}, true
	}
	return nil, false
}

// unrollFor replicates a counted loop body tripCount times.
func unrollFor(f *ir.ForStmt, maxIter int) ([]ir.Stmt, bool) {
	count, ok := TripCount(f, maxIter)
	if !ok {
		return nil, false
	}
	var out []ir.Stmt
	if f.Init != nil {
		out = append(out, f.Init)
	}
	for it := 0; it < count; it++ {
		body := ir.CloneBlock(f.Body, nil)
		out = append(out, body.Stmts...)
		if f.Post != nil {
			out = append(out, ir.CloneStmt(f.Post, nil))
		}
	}
	return out, true
}

// unrollWhile converts a bounded while into Bound nested guards:
//
//	while (c) B   →   if (c) { B if (c) { B ... } }
//
// which executes B exactly as many times as the while would, provided the
// real trip count never exceeds the bound (the designer's #bound
// assertion).
func unrollWhile(w *ir.WhileStmt) ir.Stmt {
	var inner ir.Stmt
	for i := 0; i < w.Bound; i++ {
		body := ir.CloneBlock(w.Body, nil)
		if inner != nil {
			body.Add(inner)
		}
		inner = ir.If(ir.CloneExpr(w.Cond, nil), body, nil)
	}
	return inner
}

// TripCount statically computes the number of iterations of a counted loop
// by executing the index recurrence: init must assign a constant to an
// index variable that the loop body never writes; cond and post must be
// pure expressions over that variable alone. Returns (count, true) on
// success with count <= maxIter.
func TripCount(f *ir.ForStmt, maxIter int) (int, bool) {
	if f.Init == nil || f.Post == nil {
		return 0, false
	}
	lv, ok := f.Init.LHS.(*ir.VarExpr)
	if !ok {
		return 0, false
	}
	idx := lv.V
	c0, ok := f.Init.RHS.(*ir.ConstExpr)
	if !ok {
		return 0, false
	}
	pv, ok := f.Post.LHS.(*ir.VarExpr)
	if !ok || pv.V != idx {
		return 0, false
	}
	// The body must not write the index variable.
	w := map[*ir.Var]bool{}
	writtenVars(f.Body.Stmts, w)
	if w[idx] || w[anyGlobalMarker] && idx.IsGlobal {
		return 0, false
	}
	// Cond and post must depend on idx (and constants) only.
	if !onlyReads(f.Cond, idx) || !onlyReads(f.Post.RHS, idx) {
		return 0, false
	}
	val := idx.Type.Canon(c0.Val)
	for count := 0; count <= maxIter; count++ {
		c, ok := evalWith(f.Cond, idx, val)
		if !ok {
			return 0, false
		}
		if c == 0 {
			return count, true
		}
		nv, ok := evalWith(f.Post.RHS, idx, val)
		if !ok {
			return 0, false
		}
		nv = idx.Type.Canon(nv)
		if nv == val && count > 0 {
			return 0, false // index stuck: not a counted loop
		}
		val = nv
	}
	return 0, false
}

// onlyReads reports whether e reads no variable other than v and contains
// no calls or array accesses.
func onlyReads(e ir.Expr, v *ir.Var) bool {
	ok := true
	ir.WalkExpr(e, func(x ir.Expr) bool {
		switch n := x.(type) {
		case *ir.VarExpr:
			if n.V != v {
				ok = false
			}
		case *ir.IndexExpr, *ir.CallExpr:
			ok = false
		}
		return ok
	})
	return ok
}

// evalWith evaluates a pure expression whose only variable is v, bound to
// val, under full bit-accurate semantics.
func evalWith(e ir.Expr, v *ir.Var, val int64) (int64, bool) {
	switch x := e.(type) {
	case *ir.ConstExpr:
		return x.Val, true
	case *ir.VarExpr:
		if x.V == v {
			return val, true
		}
		return 0, false
	case *ir.BinExpr:
		l, ok := evalWith(x.L, v, val)
		if !ok {
			return 0, false
		}
		r, ok := evalWith(x.R, v, val)
		if !ok {
			return 0, false
		}
		out, err := interp.EvalBinOp(x.Op, l, r, x.Typ,
			interp.UnsignedOperands(x.L.Type(), x.R.Type()))
		if err != nil {
			return 0, false
		}
		return out, true
	case *ir.UnExpr:
		in, ok := evalWith(x.X, v, val)
		if !ok {
			return 0, false
		}
		return interp.EvalUnOp(x.Op, in, x.Typ), true
	case *ir.CastExpr:
		in, ok := evalWith(x.X, v, val)
		if !ok {
			return 0, false
		}
		return x.Typ.Canon(in), true
	case *ir.SelExpr:
		c, ok := evalWith(x.Cond, v, val)
		if !ok {
			return 0, false
		}
		if c != 0 {
			t, ok := evalWith(x.Then, v, val)
			return x.Typ.Canon(t), ok
		}
		t, ok := evalWith(x.Else, v, val)
		return x.Typ.Canon(t), ok
	}
	return 0, false
}

// UnrollBy partially unrolls a loop by the given factor (the paper’s
// incremental mode: "loops are unrolled one iteration at a time, followed
// by code compaction ... until no further improvements"). The loop is kept
// and its body replicated factor times with interleaved guard checks, so
// semantics are exact for any trip count:
//
//	for (init; c; post) B   →   for (init; c; ) { B post if (c) { B post ... } }
func UnrollBy(label string, factor int) Pass {
	return PassFunc{PassName: fmt.Sprintf("unroll-by(%s,%d)", label, factor),
		Fn: func(p *ir.Program) (bool, error) {
			if factor < 2 {
				return false, nil
			}
			changed := false
			for _, f := range p.Funcs {
				ir.RewriteBlocks(f.Body, func(stmts []ir.Stmt) []ir.Stmt {
					for i, s := range stmts {
						fs, ok := s.(*ir.ForStmt)
						if !ok || fs.Label != label {
							continue
						}
						stmts[i] = partialUnroll(fs, factor)
						changed = true
					}
					return stmts
				})
			}
			return changed, nil
		}}
}

func partialUnroll(f *ir.ForStmt, factor int) ir.Stmt {
	mk := func() []ir.Stmt {
		b := ir.CloneBlock(f.Body, nil)
		out := b.Stmts
		if f.Post != nil {
			out = append(out, ir.CloneStmt(f.Post, nil))
		}
		return out
	}
	// Build the guarded replica chain innermost-first: replicas 2..factor
	// are each wrapped in "if (cond)".
	var inner *ir.Block
	for i := 0; i < factor-1; i++ {
		blk := ir.NewBlock(mk()...)
		if inner != nil {
			blk.Add(ir.If(ir.CloneExpr(f.Cond, nil), inner, nil))
		}
		inner = blk
	}
	body := ir.NewBlock(mk()...)
	if inner != nil {
		body.Add(ir.If(ir.CloneExpr(f.Cond, nil), inner, nil))
	}
	return &ir.ForStmt{Init: f.Init, Cond: f.Cond, Post: nil, Body: body, Label: f.Label}
}
