package wire

import (
	"bytes"
	"testing"
)

// FuzzDecoder drives the primitive readers over arbitrary input: every
// read must either succeed or set the sticky error — never panic, and
// never hand back a subslice outside the input.
func FuzzDecoder(f *testing.F) {
	e := &Encoder{}
	e.Tag("fuzz/1")
	e.Uvarint(3)
	e.Int(-5)
	e.Bool(true)
	e.Float64(2.5)
	e.String("seed")
	e.Bytes([]byte{1, 2, 3})
	f.Add(e.Data())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		// A fixed read script: the order is arbitrary, panics are the bug.
		_ = d.Uvarint()
		_ = d.Int64()
		_ = d.Bool()
		_ = d.Float64()
		_ = d.String()
		if b := d.Bytes(); len(b) > len(data) {
			t.Fatalf("Bytes returned %d bytes from a %d-byte input", len(b), len(data))
		}
		if n := d.Len(4); d.Err() == nil && n > len(data) {
			t.Fatalf("Len admitted %d elements over %d input bytes", n, len(data))
		}
		_ = d.Finish()
	})
}

// FuzzRoundTrip checks that any (string, bytes, int) triple survives an
// encode/decode cycle byte-exactly.
func FuzzRoundTrip(f *testing.F) {
	f.Add("x", []byte{1}, int64(-3))
	f.Add("", []byte(nil), int64(0))
	f.Fuzz(func(t *testing.T, s string, b []byte, v int64) {
		e := &Encoder{}
		e.String(s)
		e.Bytes(b)
		e.Int64(v)
		d := NewDecoder(e.Data())
		if got := d.String(); got != s {
			t.Fatalf("string %q round-tripped to %q", s, got)
		}
		if got := d.Bytes(); !bytes.Equal(got, b) {
			t.Fatalf("bytes %v round-tripped to %v", b, got)
		}
		if got := d.Int64(); got != v {
			t.Fatalf("int64 %d round-tripped to %d", v, got)
		}
		if err := d.Finish(); err != nil {
			t.Fatal(err)
		}
	})
}
