// Package wire is the hand-rolled deterministic binary codec under
// every artifact serialization in the staged flow. The layout is
// canonical by construction: fields are written in a fixed order,
// integers as varints (zigzag for signed values), floats as fixed
// 8-byte little-endian IEEE bits, and strings/byte slices behind uvarint
// length prefixes — no reflection, no type descriptors, no map
// iteration, so encoding the same value always produces the same bytes.
// That property is what lets an artifact's content fingerprint be a
// plain SHA-256 over its wire bytes, and disk revival verify by hashing
// the stored payload without decoding it.
//
// The Decoder carries a sticky first error: every read after a failure
// returns a zero value, so codec code reads a whole struct straight
// through and checks Err once at the end. Length prefixes are validated
// against the bytes actually remaining (scaled by a caller-supplied
// minimum element size), so a malformed or adversarial input can never
// drive an over-allocation — the worst it can do is return an error.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Encoder appends wire primitives to a growing buffer. The zero value
// is ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with an initial capacity hint, for
// callers that know roughly how large the encoding will be.
func NewEncoder(sizeHint int) *Encoder {
	return &Encoder{buf: make([]byte, 0, sizeHint)}
}

// Data returns the encoded bytes. The slice aliases the encoder's
// buffer; further writes may invalidate it.
func (e *Encoder) Data() []byte { return e.buf }

// Len reports the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Uvarint writes an unsigned varint.
func (e *Encoder) Uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Int64 writes a signed value as a zigzag varint.
func (e *Encoder) Int64(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// Int is Int64 for the int-typed fields that dominate the codecs.
func (e *Encoder) Int(v int) { e.Int64(int64(v)) }

// Bool writes one byte, 0 or 1.
func (e *Encoder) Bool(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Float64 writes fixed 8-byte little-endian IEEE 754 bits — bit-exact
// round-trips, NaN payloads and signed zeros included.
func (e *Encoder) Float64(f float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(f))
}

// String writes a uvarint length prefix followed by the string bytes.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Bytes writes a uvarint length prefix followed by the raw bytes.
func (e *Encoder) Bytes(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Raw appends bytes with no length prefix — fixed-size fields (hashes)
// whose length both sides know.
func (e *Encoder) Raw(b []byte) { e.buf = append(e.buf, b...) }

// Ints writes a length-prefixed []int.
func (e *Encoder) Ints(v []int) {
	e.Uvarint(uint64(len(v)))
	for _, x := range v {
		e.Int(x)
	}
}

// Float64s writes a length-prefixed []float64.
func (e *Encoder) Float64s(v []float64) {
	e.Uvarint(uint64(len(v)))
	for _, x := range v {
		e.Float64(x)
	}
}

// Tag writes a format tag (a versioned string like "irprog/1") the
// decoder checks before reading anything else.
func (e *Encoder) Tag(s string) { e.String(s) }

// Decoder reads wire primitives from a byte slice with a sticky first
// error: after any failure every read returns the zero value and Err
// reports the original cause.
type Decoder struct {
	data []byte
	off  int
	err  error
}

// NewDecoder returns a decoder over data. The decoder reads subslices
// of data without copying; callers that mutate data afterwards own the
// consequences.
func NewDecoder(data []byte) *Decoder { return &Decoder{data: data} }

// Err reports the first decoding failure, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining reports the bytes not yet consumed.
func (d *Decoder) Remaining() int { return len(d.data) - d.off }

// failf records the first error with the offset it happened at.
func (d *Decoder) failf(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: offset %d: %s", d.off, fmt.Sprintf(format, args...))
	}
}

// Uvarint reads an unsigned varint. The single-byte case — almost every
// length prefix and small field in practice — is inlined; multi-byte
// values fall through to encoding/binary.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off < len(d.data) {
		if b := d.data[d.off]; b < 0x80 {
			d.off++
			return uint64(b)
		}
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.failf("bad uvarint")
		return 0
	}
	d.off += n
	return v
}

// Int64 reads a zigzag varint, with the same single-byte fast path as
// Uvarint (one zigzag byte covers -64..63, which spans the IDs, kinds,
// and state numbers that dominate artifact encodings).
func (d *Decoder) Int64() int64 {
	if d.err != nil {
		return 0
	}
	if d.off < len(d.data) {
		if b := d.data[d.off]; b < 0x80 {
			d.off++
			v := int64(b >> 1)
			if b&1 != 0 {
				v = ^v
			}
			return v
		}
	}
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		d.failf("bad varint")
		return 0
	}
	d.off += n
	return v
}

// Int is Int64 narrowed to int.
func (d *Decoder) Int() int { return int(d.Int64()) }

// Bool reads one byte and rejects anything but 0 or 1 — a strict read,
// so bit-flipped inputs fail instead of aliasing onto a valid value.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.data) {
		d.failf("truncated bool")
		return false
	}
	b := d.data[d.off]
	if b > 1 {
		d.failf("bad bool byte %d", b)
		return false
	}
	d.off++
	return b == 1
}

// Float64 reads fixed 8-byte little-endian IEEE 754 bits.
func (d *Decoder) Float64() float64 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 8 {
		d.failf("truncated float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data[d.off:]))
	d.off += 8
	return v
}

// take consumes n bytes, returning a subslice of the input.
func (d *Decoder) take(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > d.Remaining() {
		d.failf("truncated %s: need %d bytes, have %d", what, n, d.Remaining())
		return nil
	}
	out := d.data[d.off : d.off+n : d.off+n]
	d.off += n
	return out
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(d.Remaining()) {
		d.failf("truncated string: need %d bytes, have %d", n, d.Remaining())
		return ""
	}
	return string(d.take(int(n), "string"))
}

// Bytes reads a length-prefixed byte slice. The result aliases the
// decoder's input — zero copy, which is what keeps shallow artifact
// decodes (a header plus a payload subslice) nearly free.
func (d *Decoder) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.Remaining()) {
		d.failf("truncated bytes: need %d bytes, have %d", n, d.Remaining())
		return nil
	}
	return d.take(int(n), "bytes")
}

// Raw reads exactly n bytes with no length prefix (fixed-size fields).
func (d *Decoder) Raw(n int) []byte { return d.take(n, "raw field") }

// Len reads a collection length prefix and validates it against the
// bytes remaining: every element must occupy at least minBytesPerElem
// bytes on the wire (pass 1 for elements whose smallest encoding is one
// byte), so a length-inflated input errors here instead of driving a
// huge allocation in the caller's make().
func (d *Decoder) Len(minBytesPerElem int) int {
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if minBytesPerElem < 1 {
		minBytesPerElem = 1
	}
	if n > uint64(d.Remaining()/minBytesPerElem) {
		d.failf("length %d exceeds remaining input (%d bytes, >=%d per element)",
			n, d.Remaining(), minBytesPerElem)
		return 0
	}
	return int(n)
}

// Ints reads a length-prefixed []int, returning nil for an empty list.
func (d *Decoder) Ints() []int {
	n := d.Len(1)
	if n == 0 {
		return nil
	}
	out := make([]int, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		out = append(out, d.Int())
	}
	return out
}

// Float64s reads a length-prefixed []float64, returning nil for an
// empty list.
func (d *Decoder) Float64s() []float64 {
	n := d.Len(8)
	if n == 0 {
		return nil
	}
	out := make([]float64, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		out = append(out, d.Float64())
	}
	return out
}

// Tag reads a format tag and fails unless it matches want exactly.
func (d *Decoder) Tag(want string) {
	got := d.String()
	if d.err == nil && got != want {
		d.failf("format tag %q, want %q", got, want)
	}
}

// Finish reports the decoder's error state, failing on trailing bytes:
// a well-formed artifact is consumed exactly.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.Remaining() != 0 {
		d.failf("%d trailing bytes", d.Remaining())
	}
	return d.err
}
