package wire

import (
	"bytes"
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	e := &Encoder{}
	e.Tag("test/1")
	e.Uvarint(0)
	e.Uvarint(1 << 40)
	e.Int(-7)
	e.Int(0)
	e.Int64(math.MinInt64)
	e.Int64(math.MaxInt64)
	e.Bool(true)
	e.Bool(false)
	e.Float64(0)
	e.Float64(math.Copysign(0, -1))
	e.Float64(3.25)
	e.Float64(math.Inf(-1))
	e.Float64(math.NaN())
	e.String("")
	e.String("hello, wire")
	e.Bytes(nil)
	e.Bytes([]byte{0, 1, 2, 255})
	e.Raw([]byte{9, 9})

	d := NewDecoder(e.Data())
	d.Tag("test/1")
	if got := d.Uvarint(); got != 0 {
		t.Errorf("uvarint 0: got %d", got)
	}
	if got := d.Uvarint(); got != 1<<40 {
		t.Errorf("uvarint 1<<40: got %d", got)
	}
	if got := d.Int(); got != -7 {
		t.Errorf("int -7: got %d", got)
	}
	if got := d.Int(); got != 0 {
		t.Errorf("int 0: got %d", got)
	}
	if got := d.Int64(); got != math.MinInt64 {
		t.Errorf("int64 min: got %d", got)
	}
	if got := d.Int64(); got != math.MaxInt64 {
		t.Errorf("int64 max: got %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("bools did not round-trip")
	}
	if got := d.Float64(); got != 0 || math.Signbit(got) {
		t.Errorf("float 0: got %v", got)
	}
	if got := d.Float64(); got != 0 || !math.Signbit(got) {
		t.Errorf("float -0: got %v", got)
	}
	if got := d.Float64(); got != 3.25 {
		t.Errorf("float 3.25: got %v", got)
	}
	if got := d.Float64(); !math.IsInf(got, -1) {
		t.Errorf("float -inf: got %v", got)
	}
	if got := d.Float64(); !math.IsNaN(got) {
		t.Errorf("float nan: got %v", got)
	}
	if got := d.String(); got != "" {
		t.Errorf("empty string: got %q", got)
	}
	if got := d.String(); got != "hello, wire" {
		t.Errorf("string: got %q", got)
	}
	if got := d.Bytes(); len(got) != 0 {
		t.Errorf("empty bytes: got %v", got)
	}
	if got := d.Bytes(); !bytes.Equal(got, []byte{0, 1, 2, 255}) {
		t.Errorf("bytes: got %v", got)
	}
	if got := d.Raw(2); !bytes.Equal(got, []byte{9, 9}) {
		t.Errorf("raw: got %v", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
}

func TestDeterministicEncoding(t *testing.T) {
	enc := func() []byte {
		e := NewEncoder(64)
		e.Tag("det/1")
		e.Int(-42)
		e.Float64(1.5)
		e.String("abc")
		return e.Data()
	}
	if !bytes.Equal(enc(), enc()) {
		t.Fatal("identical writes produced different bytes")
	}
}

func TestStickyError(t *testing.T) {
	d := NewDecoder([]byte{0xff}) // truncated varint
	_ = d.Uvarint()
	if d.Err() == nil {
		t.Fatal("truncated uvarint did not error")
	}
	first := d.Err()
	// Every subsequent read must return zero values and keep the error.
	if d.Int() != 0 || d.Bool() || d.Float64() != 0 || d.String() != "" || d.Bytes() != nil {
		t.Error("reads after error returned non-zero values")
	}
	if d.Err() != first {
		t.Error("sticky error was replaced")
	}
}

func TestTagMismatch(t *testing.T) {
	e := &Encoder{}
	e.Tag("a/1")
	d := NewDecoder(e.Data())
	d.Tag("b/1")
	if d.Err() == nil {
		t.Fatal("tag mismatch not detected")
	}
}

func TestBadBool(t *testing.T) {
	d := NewDecoder([]byte{2})
	_ = d.Bool()
	if d.Err() == nil {
		t.Fatal("bool byte 2 accepted")
	}
}

func TestLenGuardsOverAllocation(t *testing.T) {
	// A length prefix claiming a billion elements over a 3-byte input
	// must fail at Len, before any caller could allocate.
	e := &Encoder{}
	e.Uvarint(1 << 30)
	d := NewDecoder(e.Data())
	if n := d.Len(1); n != 0 || d.Err() == nil {
		t.Fatalf("inflated length accepted: n=%d err=%v", n, d.Err())
	}

	// The per-element floor tightens the bound: 10 one-byte values fit
	// in 10 bytes but not 10 eight-byte floats.
	e = &Encoder{}
	e.Uvarint(10)
	e.Raw(make([]byte, 10))
	d = NewDecoder(e.Data())
	if n := d.Len(8); n != 0 || d.Err() == nil {
		t.Fatalf("length over min-element-size accepted: n=%d err=%v", n, d.Err())
	}
	d = NewDecoder(e.Data())
	if n := d.Len(1); n != 10 || d.Err() != nil {
		t.Fatalf("valid length rejected: n=%d err=%v", n, d.Err())
	}
}

func TestFinishTrailingBytes(t *testing.T) {
	e := &Encoder{}
	e.Int(1)
	e.Raw([]byte{0})
	d := NewDecoder(e.Data())
	_ = d.Int()
	if err := d.Finish(); err == nil {
		t.Fatal("trailing byte not reported")
	}
}

func TestTruncatedReads(t *testing.T) {
	e := &Encoder{}
	e.String("hello")
	data := e.Data()
	for cut := 0; cut < len(data); cut++ {
		d := NewDecoder(data[:cut])
		_ = d.String()
		if d.Err() == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}
